package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/report"
	"mwmerge/internal/types"
	"mwmerge/internal/vector"
)

// Config parameterizes the HTTP server around a set of pools.
type Config struct {
	// DefaultDeadline bounds a request that carries no deadline_ms of
	// its own; 0 leaves such requests unbounded.
	DefaultDeadline time.Duration
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// Server mounts the serving endpoints over one or more matrix pools:
//
//	POST /v1/spmv      {"matrix","x","y_in"?,...}        → {"y",...}
//	POST /v1/spmspv    {"matrix","keys","vals",...}      → {"y","spmspv_stats",...}
//	POST /v1/iterate   {"matrix","x0","iterations",...}  → {"y","iterations",...}
//	POST /v1/pagerank  {"matrix","damping","tol",...}    → {"y","iterations",...}
//	GET  /metrics                                        → aggregated pool ledger (Prometheus)
//	GET  /healthz                                        → pool inventory
//
// Every compute request accepts "deadline_ms" (admission deadline) and
// "report": true (a per-request counter-delta run report in the
// response). Admission rejections are explicit and happen before any
// engine work: 429 when the bounded queue is full, 503 when the
// deadline expires while queued, 422 when the request exceeds the
// engine capacity (e.g. ITS overlap on a too-large matrix).
type Server struct {
	cfg   Config
	pools map[string]*Pool
	names []string
	mux   *http.ServeMux

	mu          sync.Mutex
	served      uint64
	rejQueue    uint64
	rejDeadline uint64
	rejCapacity uint64
}

// NewServer assembles a server over the given pools.
func NewServer(cfg Config, pools ...*Pool) (*Server, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("serve: server needs at least one pool")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{cfg: cfg, pools: make(map[string]*Pool), mux: http.NewServeMux()}
	for _, p := range pools {
		if _, dup := s.pools[p.name]; dup {
			return nil, fmt.Errorf("serve: duplicate pool %q", p.name)
		}
		s.pools[p.name] = p
		s.names = append(s.names, p.name)
	}
	sort.Strings(s.names)
	s.mux.HandleFunc("POST /v1/spmv", s.handleSpMV)
	s.mux.HandleFunc("POST /v1/spmspv", s.handleSpMSpV)
	s.mux.HandleFunc("POST /v1/iterate", s.handleIterate)
	s.mux.HandleFunc("POST /v1/pagerank", s.handlePageRank)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Pools returns the mounted pools in name order.
func (s *Server) Pools() []*Pool {
	out := make([]*Pool, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, s.pools[n])
	}
	return out
}

// requestCommon carries the fields every compute request shares.
type requestCommon struct {
	Matrix     string `json:"matrix"`
	DeadlineMS int64  `json:"deadline_ms"`
	Report     bool   `json:"report"`
}

type spmvRequest struct {
	requestCommon
	X   []float64 `json:"x"`
	YIn []float64 `json:"y_in"`
}

type spmspvRequest struct {
	requestCommon
	// Keys/Vals are the sparse frontier in strictly ascending key order.
	Keys []uint64  `json:"keys"`
	Vals []float64 `json:"vals"`
}

type iterateRequest struct {
	requestCommon
	X0         []float64 `json:"x0"`
	Iterations int       `json:"iterations"`
	Overlap    bool      `json:"overlap"`
	Damping    float64   `json:"damping"`
}

type pagerankRequest struct {
	requestCommon
	Damping  float64 `json:"damping"`
	Tol      float64 `json:"tol"`
	MaxIters int     `json:"max_iters"`
	Overlap  bool    `json:"overlap"`
}

// spmspvStatsJSON is the stable JSON shape of core.SpMSpVStats.
type spmspvStatsJSON struct {
	SegmentsTotal  int    `json:"segments_total"`
	SegmentsActive int    `json:"segments_active"`
	EntriesVisited uint64 `json:"entries_visited"`
	EntriesSkipped uint64 `json:"entries_skipped"`
}

// response is the JSON body of every successful compute request.
type response struct {
	Y          []float64        `json:"y"`
	Iterations int              `json:"iterations,omitempty"`
	Frontier   *spmspvStatsJSON `json:"spmspv_stats,omitempty"`
	// Report is the per-request counter-delta run report, present when
	// the request asked for one.
	Report *report.Report `json:"report,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// decode reads the request body into dst, rejecting oversized bodies
// and malformed JSON with 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "serve: bad request body: "+err.Error())
		return false
	}
	return true
}

// run applies the admission pipeline — pool lookup, capacity check,
// deadline budget, bounded-queue engine checkout — and executes fn on
// the checked-out engine. Every rejection happens before fn runs.
func (s *Server) run(w http.ResponseWriter, r *http.Request, common requestCommon, op string, overlap bool, fn func(eng *core.Engine) (*response, error)) {
	p := s.pools[common.Matrix]
	if p == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("serve: unknown matrix %q", common.Matrix))
		return
	}
	if common.DeadlineMS < 0 {
		httpError(w, http.StatusBadRequest, "serve: negative deadline_ms")
		return
	}
	if err := p.CheckCapacity(overlap); err != nil {
		s.bump(&s.rejCapacity)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ctx := r.Context()
	if d := s.deadlineFor(common.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var resp *response
	err := p.Do(ctx, func(eng *core.Engine) error {
		var before report.Counters
		if common.Report {
			before = eng.Counters()
		}
		var err error
		resp, err = fn(eng)
		if err != nil {
			return err
		}
		if common.Report {
			resp.Report = report.NewReport(report.Meta{
				Workload:     "serve:" + op + " matrix=" + p.name,
				Rows:         p.a.Rows,
				Cols:         p.a.Cols,
				NNZ:          uint64(p.a.NNZ()),
				Workers:      p.cfg.Workers,
				MergeWorkers: p.cfg.Merge.MergeWorkers,
				MergeCores:   p.cfg.Merge.Cores(),
				Overlap:      overlap,
			}, eng.Counters().Sub(before))
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		s.bump(&s.rejQueue)
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDeadline):
		s.bump(&s.rejDeadline)
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		// Engine validation errors: the request's data did not fit the
		// resident matrix.
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		s.bump(&s.served)
		writeJSON(w, http.StatusOK, resp)
	}
}

// deadlineFor resolves a request's admission budget.
func (s *Server) deadlineFor(deadlineMS int64) time.Duration {
	if deadlineMS > 0 {
		return time.Duration(deadlineMS) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

func (s *Server) bump(counter *uint64) {
	s.mu.Lock()
	*counter++
	s.mu.Unlock()
}

func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	var req spmvRequest
	if !s.decode(w, r, &req) {
		return
	}
	if p := s.pools[req.Matrix]; p != nil && p.Batching() {
		s.handleSpMVBatched(w, r, p, &req)
		return
	}
	s.run(w, r, req.requestCommon, "spmv", false, func(eng *core.Engine) (*response, error) {
		y, err := eng.SpMV(s.pools[req.Matrix].a, req.X, req.YIn)
		if err != nil {
			return nil, err
		}
		return &response{Y: y}, nil
	})
}

// handleSpMVBatched is the /v1/spmv path for pools with coalescing
// enabled. Admission — deadline sanity, capacity, operand dimensions —
// happens per request up front, so a malformed request is rejected
// alone, before it can join (and poison) a batch. The surviving request
// is handed to the pool's batcher, which serves up to MaxBatch queued
// requests with one SpMVBlock call on one member and splits the
// per-request counter deltas back out; a request whose deadline expires
// mid-window gets 503 while the rest of its batch completes normally.
// Responses are bit-identical to the unbatched path.
func (s *Server) handleSpMVBatched(w http.ResponseWriter, r *http.Request, p *Pool, req *spmvRequest) {
	if req.DeadlineMS < 0 {
		httpError(w, http.StatusBadRequest, "serve: negative deadline_ms")
		return
	}
	if err := p.CheckCapacity(false); err != nil {
		s.bump(&s.rejCapacity)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if err := p.cfg.CheckOperands(p.a, uint64(len(req.X)), req.YIn); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if d := s.deadlineFor(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	y, delta, err := p.batch.submit(ctx, req.X, req.YIn)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.bump(&s.rejQueue)
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDeadline):
		s.bump(&s.rejDeadline)
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		resp := &response{Y: y}
		if req.Report {
			// The request's split of the batch delta: the column that
			// streamed the matrix carries the whole batch's matrix+VLDI
			// share (BlockResult.Deltas), so the reports of one flush sum
			// to the flush's total ledger movement.
			resp.Report = report.NewReport(report.Meta{
				Workload:     "serve:spmv matrix=" + p.name,
				Rows:         p.a.Rows,
				Cols:         p.a.Cols,
				NNZ:          uint64(p.a.NNZ()),
				Workers:      p.cfg.Workers,
				MergeWorkers: p.cfg.Merge.MergeWorkers,
				MergeCores:   p.cfg.Merge.Cores(),
			}, delta)
		}
		s.bump(&s.served)
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleSpMSpV(w http.ResponseWriter, r *http.Request) {
	var req spmspvRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Keys) != len(req.Vals) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("serve: %d keys vs %d vals", len(req.Keys), len(req.Vals)))
		return
	}
	s.run(w, r, req.requestCommon, "spmspv", false, func(eng *core.Engine) (*response, error) {
		a := s.pools[req.Matrix].a
		sx := vector.NewSparse(int(a.Cols), len(req.Keys))
		for i, k := range req.Keys {
			if err := sx.Append(types.Record{Key: k, Val: req.Vals[i]}); err != nil {
				return nil, err
			}
		}
		y, st, err := eng.SpMSpV(a, sx)
		if err != nil {
			return nil, err
		}
		return &response{Y: y, Frontier: &spmspvStatsJSON{
			SegmentsTotal:  st.SegmentsTotal,
			SegmentsActive: st.SegmentsActive,
			EntriesVisited: st.EntriesVisited,
			EntriesSkipped: st.EntriesSkipped,
		}}, nil
	})
}

func (s *Server) handleIterate(w http.ResponseWriter, r *http.Request) {
	var req iterateRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.run(w, r, req.requestCommon, "iterate", req.Overlap, func(eng *core.Engine) (*response, error) {
		res, err := eng.Iterate(s.pools[req.Matrix].a, req.X0, core.IterateOptions{
			Iterations: req.Iterations,
			Overlap:    req.Overlap,
			Damping:    req.Damping,
		})
		if err != nil {
			return nil, err
		}
		return &response{Y: res.X, Iterations: res.Iterations}, nil
	})
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request) {
	var req pagerankRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Damping == 0 {
		req.Damping = 0.85
	}
	if req.Tol == 0 {
		req.Tol = 1e-9
	}
	if req.MaxIters == 0 {
		req.MaxIters = 50
	}
	s.run(w, r, req.requestCommon, "pagerank", req.Overlap, func(eng *core.Engine) (*response, error) {
		ranks, iters, err := eng.PageRank(s.pools[req.Matrix].a, req.Damping, req.Tol, req.MaxIters, req.Overlap)
		if err != nil {
			return nil, err
		}
		return &response{Y: ranks, Iterations: iters}, nil
	})
}

// AggregatedLedger sums every pool's published ledger — the counter
// state /metrics renders. Exposed so callers (tests, the smoke check)
// can compare a scrape against the exact expected exposition.
func (s *Server) AggregatedLedger() report.Counters {
	var c report.Counters
	for _, name := range s.names {
		pc, _, _ := s.pools[name].Ledger()
		c = c.Add(pc)
	}
	return c
}

// handleMetrics renders the aggregated pool ledger in the Prometheus
// text exposition the run reports use, followed by the serving layer's
// own request/rejection gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.AggregatedLedger()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rep := report.NewReport(report.Meta{Workload: "spmvd"}, c)
	if err := rep.WritePrometheus(w); err != nil {
		return
	}
	s.mu.Lock()
	served, rq, rd, rc := s.served, s.rejQueue, s.rejDeadline, s.rejCapacity
	s.mu.Unlock()
	fmt.Fprintf(w, "# HELP mwmerge_serve_requests_total Completed compute requests by pool.\n# TYPE mwmerge_serve_requests_total counter\n")
	for _, name := range s.names {
		_, _, n := s.pools[name].Ledger()
		fmt.Fprintf(w, "mwmerge_serve_requests_total{pool=%q} %d\n", name, n)
	}
	fmt.Fprintf(w, "# HELP mwmerge_serve_served_total Requests answered 200.\n# TYPE mwmerge_serve_served_total counter\nmwmerge_serve_served_total %d\n", served)
	fmt.Fprintf(w, "# HELP mwmerge_serve_rejected_total Admission rejections by reason.\n# TYPE mwmerge_serve_rejected_total counter\n")
	fmt.Fprintf(w, "mwmerge_serve_rejected_total{reason=\"queue_full\"} %d\n", rq)
	fmt.Fprintf(w, "mwmerge_serve_rejected_total{reason=\"deadline\"} %d\n", rd)
	fmt.Fprintf(w, "mwmerge_serve_rejected_total{reason=\"capacity\"} %d\n", rc)
	fmt.Fprintf(w, "# HELP mwmerge_serve_pool_engines Warmed engines per pool.\n# TYPE mwmerge_serve_pool_engines gauge\n")
	for _, name := range s.names {
		fmt.Fprintf(w, "mwmerge_serve_pool_engines{pool=%q} %d\n", name, s.pools[name].Size())
	}
	// Drain/skew health per resident matrix (DESIGN.md §13): a high
	// injected ratio says the pool's output is hypersparse (drain-bound —
	// the sparse drain's regime); a high stripe imbalance says step 1 is
	// straggler-bound on a skewed partition.
	fmt.Fprintf(w, "# HELP mwmerge_serve_pool_injected_ratio Fraction of store-queue output injected as missing keys.\n# TYPE mwmerge_serve_pool_injected_ratio gauge\n")
	for _, name := range s.names {
		_, st, _ := s.pools[name].Ledger()
		fmt.Fprintf(w, "mwmerge_serve_pool_injected_ratio{pool=%q} %g\n", name, st.InjectedRatio())
	}
	fmt.Fprintf(w, "# HELP mwmerge_serve_pool_stripe_imbalance Mean heaviest-stripe / mean-stripe nonzero ratio per step-1 run.\n# TYPE mwmerge_serve_pool_stripe_imbalance gauge\n")
	for _, name := range s.names {
		_, st, _ := s.pools[name].Ledger()
		fmt.Fprintf(w, "mwmerge_serve_pool_stripe_imbalance{pool=%q} %g\n", name, st.StripeImbalance())
	}
	s.writeBatchMetrics(w)
}

// writeBatchMetrics renders the batcher counters of every coalescing
// pool: flush and batched-request totals plus the requests-per-flush
// occupancy histogram, which is how the matrix amortization — one A
// stream serving many requests — stays observable in production, not
// just in benches. Pools without batching emit nothing.
func (s *Server) writeBatchMetrics(w io.Writer) {
	var batching []string
	for _, name := range s.names {
		if s.pools[name].Batching() {
			batching = append(batching, name)
		}
	}
	if len(batching) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP mwmerge_serve_batch_flushes_total Coalesced SpMVBlock flushes by pool.\n# TYPE mwmerge_serve_batch_flushes_total counter\n")
	for _, name := range batching {
		bs, _ := s.pools[name].BatchStats()
		fmt.Fprintf(w, "mwmerge_serve_batch_flushes_total{pool=%q} %d\n", name, bs.Flushes)
	}
	fmt.Fprintf(w, "# HELP mwmerge_serve_batched_requests_total Requests served through coalesced flushes by pool.\n# TYPE mwmerge_serve_batched_requests_total counter\n")
	for _, name := range batching {
		bs, _ := s.pools[name].BatchStats()
		fmt.Fprintf(w, "mwmerge_serve_batched_requests_total{pool=%q} %d\n", name, bs.Requests)
	}
	fmt.Fprintf(w, "# HELP mwmerge_serve_batch_occupancy Requests coalesced per flush.\n# TYPE mwmerge_serve_batch_occupancy histogram\n")
	for _, name := range batching {
		bs, _ := s.pools[name].BatchStats()
		cum := uint64(0)
		for i, ub := range occupancyBuckets {
			cum += bs.Occupancy[i]
			fmt.Fprintf(w, "mwmerge_serve_batch_occupancy_bucket{pool=%q,le=\"%d\"} %d\n", name, ub, cum)
		}
		cum += bs.Occupancy[len(occupancyBuckets)]
		fmt.Fprintf(w, "mwmerge_serve_batch_occupancy_bucket{pool=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "mwmerge_serve_batch_occupancy_sum{pool=%q} %d\n", name, bs.Requests)
		fmt.Fprintf(w, "mwmerge_serve_batch_occupancy_count{pool=%q} %d\n", name, bs.Flushes)
	}
}

// healthPool is one pool's row in the /healthz inventory.
type healthPool struct {
	Matrix   string `json:"matrix"`
	Rows     uint64 `json:"rows"`
	Cols     uint64 `json:"cols"`
	NNZ      uint64 `json:"nnz"`
	Engines  int    `json:"engines"`
	Requests uint64 `json:"requests"`
}

type healthResponse struct {
	Status string       `json:"status"`
	Pools  []healthPool `json:"pools"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok"}
	for _, name := range s.names {
		p := s.pools[name]
		_, _, n := p.Ledger()
		resp.Pools = append(resp.Pools, healthPool{
			Matrix:   name,
			Rows:     p.a.Rows,
			Cols:     p.a.Cols,
			NNZ:      uint64(p.a.NNZ()),
			Engines:  p.Size(),
			Requests: n,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
