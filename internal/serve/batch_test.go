package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/matrix"
	"mwmerge/internal/report"
	"mwmerge/internal/vector"
)

// newBatchPool builds a pool with request coalescing enabled.
func newBatchPool(t *testing.T, a *matrix.COO, size, maxBatch int, window time.Duration) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{
		Name: "g", Matrix: a, Engine: testEngineConfig(),
		Size: size, MaxQueue: 64,
		MaxBatch: maxBatch, BatchWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolBatchConfig pins the batching knobs' validation and defaults.
func TestPoolBatchConfig(t *testing.T) {
	a := testGraph(t, 256, 3, 5)
	if _, err := NewPool(PoolConfig{Name: "g", Matrix: a, Engine: testEngineConfig(), MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	if _, err := NewPool(PoolConfig{Name: "g", Matrix: a, Engine: testEngineConfig(), BatchWindow: -time.Second}); err == nil {
		t.Error("negative BatchWindow accepted")
	}
	for _, mb := range []int{0, 1} {
		p, err := NewPool(PoolConfig{Name: "g", Matrix: a, Engine: testEngineConfig(), MaxBatch: mb})
		if err != nil {
			t.Fatal(err)
		}
		if p.Batching() {
			t.Errorf("MaxBatch=%d enabled batching", mb)
		}
		if _, ok := p.BatchStats(); ok {
			t.Errorf("MaxBatch=%d reported batch stats", mb)
		}
	}
	p := newBatchPool(t, a, 1, 4, 0)
	if !p.Batching() {
		t.Error("MaxBatch=4 did not enable batching")
	}
	if p.batch.window != 2*time.Millisecond {
		t.Errorf("default window = %v, want 2ms", p.batch.window)
	}
}

// TestBatchedMatchesUnbatched fires exactly MaxBatch concurrent requests
// — the deterministic count-triggered flush — and checks the coalesced
// path end to end: every response is bit-identical to a fresh-engine
// SpMV, the pool ledger equals one direct SpMVBlock run (the matrix
// streamed once for the whole flush), and the flush/occupancy counters
// record one 4-wide batch.
func TestBatchedMatchesUnbatched(t *testing.T) {
	const k = 4
	a := testGraph(t, 512, 4, 31)
	p := newBatchPool(t, a, 2, k, time.Hour) // only the count trigger may flush
	s, err := NewServer(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	xs := make([]vector.Dense, k)
	want := make([]vector.Dense, k)
	for i := range xs {
		xs[i] = testX(a.Cols, int64(60+i))
		e, err := core.New(testEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = e.SpMV(a, xs[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]vector.Dense, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = postSpMV(ts.URL, map[string]any{"matrix": "g", "x": xs[i]})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if d := got[i].MaxAbsDiff(want[i]); d != 0 {
			t.Errorf("request %d diverged from unbatched SpMV by %g", i, d)
		}
	}

	// The pool ledger must equal one block run over the same columns
	// (the batch's column order is arrival order, but ledger totals are
	// order-invariant sums).
	ref, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SpMVBlock(a, xs, nil); err != nil {
		t.Fatal(err)
	}
	ledger, _, served := p.Ledger()
	if served != k {
		t.Errorf("served = %d, want %d", served, k)
	}
	if ledger != ref.Counters() {
		t.Errorf("pool ledger != one SpMVBlock run:\n got  %+v\n want %+v", ledger, ref.Counters())
	}

	st, ok := p.BatchStats()
	if !ok {
		t.Fatal("batching pool reported no stats")
	}
	if st.Flushes != 1 || st.Requests != k {
		t.Errorf("flushes=%d requests=%d, want 1 flush of %d", st.Flushes, st.Requests, k)
	}
	if st.Occupancy[2] != 1 { // bucket le=4
		t.Errorf("occupancy = %v, want one flush in the le=4 bucket", st.Occupancy)
	}
}

// TestBatchWindowFlush exercises the timer path: a lone request must be
// served when its window expires, and a second lone request must re-arm
// the same timer.
func TestBatchWindowFlush(t *testing.T) {
	a := testGraph(t, 256, 3, 37)
	p := newBatchPool(t, a, 1, 8, 2*time.Millisecond)
	e, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		x := testX(a.Cols, int64(70+round))
		want, err := e.SpMV(a, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		y, _, err := p.batch.submit(context.Background(), x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := y.MaxAbsDiff(want); d != 0 {
			t.Errorf("round %d: window-flushed result differs by %g", round, d)
		}
		st, _ := p.BatchStats()
		if st.Flushes != uint64(round) || st.Requests != uint64(round) {
			t.Errorf("round %d: flushes=%d requests=%d", round, st.Flushes, st.Requests)
		}
	}
}

// TestBatchDeadlineMidWindow is the poisoning check: a request whose
// deadline expires while it waits in an open batch window gets 503, and
// the batch it was queued into still serves every live request with
// correct results. The sequencing is deterministic: the doomed request
// arms a one-hour window, we wait for its 503, then exactly enough live
// requests arrive to trip the count trigger (the expired request still
// occupies its batch slot, so live+1 = MaxBatch).
func TestBatchDeadlineMidWindow(t *testing.T) {
	const maxBatch = 4
	a := testGraph(t, 512, 4, 41)
	p := newBatchPool(t, a, 1, maxBatch, time.Hour)
	s, err := NewServer(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The doomed request: 5ms deadline against a one-hour window.
	status, _, err := soakPost(ts.URL+"/v1/spmv",
		map[string]any{"matrix": "g", "x": testX(a.Cols, 80), "deadline_ms": 5})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expired-in-window request: status %d, want 503", status)
	}

	// Three live requests complete the batch; the flush must skip the
	// expired slot and serve all three bit-exactly.
	const live = maxBatch - 1
	got := make([]vector.Dense, live)
	want := make([]vector.Dense, live)
	errs := make([]error, live)
	var wg sync.WaitGroup
	for i := 0; i < live; i++ {
		x := testX(a.Cols, int64(90+i))
		e, err := core.New(testEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = e.SpMV(a, x, nil); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, x vector.Dense) {
			defer wg.Done()
			got[i], errs[i] = postSpMV(ts.URL, map[string]any{"matrix": "g", "x": x})
		}(i, x)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("live request %d: %v", i, errs[i])
		}
		if d := got[i].MaxAbsDiff(want[i]); d != 0 {
			t.Errorf("live request %d poisoned by the expired batchmate: diverged by %g", i, d)
		}
	}
	st, _ := p.BatchStats()
	if st.Flushes != 1 || st.Requests != live {
		t.Errorf("flushes=%d requests=%d, want one flush of %d live requests", st.Flushes, st.Requests, live)
	}
	_, _, served := p.Ledger()
	if served != live {
		t.Errorf("ledger served=%d, want %d (the expired request must not count)", served, live)
	}
}

// TestBatchMetricsExposition pins the /metrics batch surface after a
// deterministic single flush: the flush and batched-request totals and
// the cumulative occupancy histogram with its _sum and _count.
func TestBatchMetricsExposition(t *testing.T) {
	const k = 2
	a := testGraph(t, 256, 3, 43)
	p := newBatchPool(t, a, 1, k, time.Hour)
	s, err := NewServer(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = postSpMV(ts.URL, map[string]any{"matrix": "g", "x": testX(a.Cols, int64(100+i))})
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`mwmerge_serve_batch_flushes_total{pool="g"} 1`,
		`mwmerge_serve_batched_requests_total{pool="g"} 2`,
		`mwmerge_serve_batch_occupancy_bucket{pool="g",le="1"} 0`,
		`mwmerge_serve_batch_occupancy_bucket{pool="g",le="2"} 1`,
		`mwmerge_serve_batch_occupancy_bucket{pool="g",le="16"} 1`,
		`mwmerge_serve_batch_occupancy_bucket{pool="g",le="+Inf"} 1`,
		`mwmerge_serve_batch_occupancy_sum{pool="g"} 2`,
		`mwmerge_serve_batch_occupancy_count{pool="g"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeSoakBatched is the coalescing soak: six clients hammer one
// matrix in lock-stepped rounds sized to the batch width, so every round
// is one deterministic 6-wide flush. Afterwards the aggregated pool
// ledger must show the matrix was streamed once per ROUND — not once per
// request — while every individual response stayed bit-identical to an
// unbatched fresh-engine run.
func TestServeSoakBatched(t *testing.T) {
	const (
		n       = 512
		clients = 6
		rounds  = 4
	)
	a := testGraph(t, n, 5, 47)
	p := newBatchPool(t, a, 2, clients, time.Hour)
	s, err := NewServer(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Single-run matrix share, for the amortization assertion below.
	single, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.SpMV(a, testX(a.Cols, 1), nil); err != nil {
		t.Fatal(err)
	}
	matrixShare := single.Counters().Traffic.MatrixBytes

	var wantLedger report.Counters
	for round := 0; round < rounds; round++ {
		xs := make([]vector.Dense, clients)
		want := make([]vector.Dense, clients)
		for c := range xs {
			xs[c] = testX(a.Cols, int64(200+round*clients+c))
			e, err := core.New(testEngineConfig())
			if err != nil {
				t.Fatal(err)
			}
			if want[c], err = e.SpMV(a, xs[c], nil); err != nil {
				t.Fatal(err)
			}
		}
		// Reference ledger: one block run per round (totals are
		// column-order invariant, so arrival order does not matter).
		ref, err := core.New(testEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.SpMVBlock(a, xs, nil); err != nil {
			t.Fatal(err)
		}
		wantLedger = wantLedger.Add(ref.Counters())

		got := make([]vector.Dense, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for c := range xs {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				got[c], errs[c] = postSpMV(ts.URL, map[string]any{"matrix": "g", "x": xs[c]})
			}(c)
		}
		wg.Wait()
		for c := range got {
			if errs[c] != nil {
				t.Fatalf("round %d client %d: %v", round, c, errs[c])
			}
			if d := got[c].MaxAbsDiff(want[c]); d != 0 {
				t.Errorf("round %d client %d diverged from unbatched run by %g", round, c, d)
			}
		}
	}

	ledger, _, served := p.Ledger()
	if served != clients*rounds {
		t.Fatalf("served = %d, want %d", served, clients*rounds)
	}
	if ledger != wantLedger {
		t.Fatalf("aggregated ledger != %d block runs:\n got  %+v\n want %+v", rounds, ledger, wantLedger)
	}
	// The amortization proof: the matrix was streamed once per round,
	// not once per request.
	if got, want := ledger.Traffic.MatrixBytes, uint64(rounds)*matrixShare; got != want {
		t.Errorf("matrix bytes = %d, want %d (streamed once per %d-wide flush)", got, want, clients)
	}
	if got, full := ledger.Traffic.MatrixBytes, uint64(clients*rounds)*matrixShare; got >= full {
		t.Errorf("matrix bytes = %d, not amortized below the %d unbatched streams (%d)", got, clients*rounds, full)
	}
	st, _ := p.BatchStats()
	if st.Flushes != rounds || st.Requests != clients*rounds {
		t.Errorf("flushes=%d requests=%d, want %d flushes of %d", st.Flushes, st.Requests, rounds, clients)
	}
}

// postSpMV posts one /v1/spmv request and decodes the result vector.
func postSpMV(base string, body map[string]any) (vector.Dense, error) {
	status, raw, err := soakPost(base+"/v1/spmv", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", status, raw)
	}
	var out struct {
		Y vector.Dense `json:"y"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out.Y, nil
}
