package serve

// Same-matrix request batching (DESIGN.md §11): a pool with MaxBatch ≥ 2
// coalesces queued /v1/spmv requests into one Engine.SpMVBlock call on a
// single member. The first request to arrive arms the batch window;
// reaching MaxBatch flushes immediately (the deterministic trigger tests
// rely on), otherwise the timer flushes whatever accumulated. One matrix
// pass then serves the whole flush, and the per-request counter deltas
// the block call splits out become each request's run report. Responses
// are bit-identical to unbatched serving: SpMVBlock computes every
// column exactly as a sequential SpMV would.

import (
	"context"
	"sync"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/report"
	"mwmerge/internal/vector"
)

// occupancyBuckets are the histogram upper bounds of the
// requests-per-flush distribution exposed on /metrics; the final bucket
// is +Inf.
var occupancyBuckets = [...]int{1, 2, 4, 8, 16}

// batchOut is one request's share of a flushed batch.
type batchOut struct {
	y     vector.Dense
	delta report.Counters
	err   error
}

// batchReq is one queued request: its operands, its admission context,
// and the buffered reply channel its flush answers on (capacity 1, so a
// flusher never blocks on a request that already gave up).
type batchReq struct {
	ctx  context.Context
	x    vector.Dense
	yIn  vector.Dense
	done chan batchOut
}

// batcher coalesces a pool's SpMV requests. Requests pend under mu until
// either the window timer fires or MaxBatch arrive; each flush runs as
// its own goroutine so a batch waiting for an engine never blocks the
// next window from filling.
type batcher struct {
	p        *Pool
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending []*batchReq
	timer   *time.Timer
	// Flush accounting behind Pool.BatchStats and the /metrics
	// occupancy histogram.
	flushes   uint64
	requests  uint64
	occupancy [len(occupancyBuckets) + 1]uint64
}

// submit queues one request and blocks until its flush replies or ctx
// expires. A request whose deadline passes mid-window returns
// ErrDeadline here — and is skipped by its flush when it comes — so an
// expired request never poisons the batch it was queued into.
func (b *batcher) submit(ctx context.Context, x, yIn vector.Dense) (vector.Dense, report.Counters, error) {
	r := &batchReq{ctx: ctx, x: x, yIn: yIn, done: make(chan batchOut, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, r)
	var batch []*batchReq
	if len(b.pending) >= b.maxBatch {
		batch = b.pending
		b.pending = nil
		if b.timer != nil {
			b.timer.Stop()
		}
	} else if len(b.pending) == 1 {
		if b.timer == nil {
			b.timer = time.AfterFunc(b.window, b.windowExpired)
		} else {
			b.timer.Reset(b.window)
		}
	}
	b.mu.Unlock()
	if batch != nil {
		go b.flush(batch)
	}
	select {
	case out := <-r.done:
		return out.y, out.delta, out.err
	case <-ctx.Done():
		return nil, report.Counters{}, ErrDeadline
	}
}

// windowExpired is the timer path: flush whatever accumulated when the
// batch window closes before MaxBatch arrived. A stale firing that lost
// the race against a count-triggered flush finds pending empty and does
// nothing.
func (b *batcher) windowExpired() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// flush serves one batch with a single SpMVBlock call on a single pool
// member, then distributes each column's output and counter delta to
// its request.
func (b *batcher) flush(batch []*batchReq) {
	// Answer requests whose deadline expired while queued and exclude
	// them from the block call.
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			r.done <- batchOut{err: ErrDeadline}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	xs := make([]vector.Dense, len(live))
	var yIns []vector.Dense
	for i, r := range live {
		xs[i] = r.x
		if r.yIn != nil && yIns == nil {
			yIns = make([]vector.Dense, len(live))
		}
	}
	if yIns != nil {
		for i, r := range live {
			yIns[i] = r.yIn
		}
	}
	err := b.p.doBatch(func(eng *core.Engine) (int, error) {
		res, err := eng.SpMVBlock(b.p.a, xs, yIns)
		if err != nil {
			return 0, err
		}
		for i, r := range live {
			r.done <- batchOut{y: res.Ys[i], delta: res.Deltas[i]}
		}
		return len(live), nil
	})
	if err != nil {
		// Engine-level rejection (defensive: operands are pre-validated
		// before they may join a batch). Every live request gets the
		// engine's error.
		for _, r := range live {
			r.done <- batchOut{err: err}
		}
	}
	b.record(len(live))
}

// record books one flush into the occupancy histogram.
func (b *batcher) record(nReq int) {
	i := 0
	for i < len(occupancyBuckets) && nReq > occupancyBuckets[i] {
		i++
	}
	b.mu.Lock()
	b.flushes++
	b.requests += uint64(nReq)
	b.occupancy[i]++
	b.mu.Unlock()
}

// acquireBatch checks a member out for a coalesced flush. Unlike acquire
// it bypasses the per-request wait queue — batched requests are already
// admitted and counted upstream — and waits without a deadline: checkout
// is bounded by the pool's own service time, and each request's deadline
// is enforced individually at submit and flush time.
func (p *Pool) acquireBatch() *member {
	return <-p.idle
}

// releaseBatch publishes n completed requests in one snapshot and
// returns the member to the pool.
func (p *Pool) releaseBatch(m *member, n int) {
	m.publishN(uint64(n))
	p.idle <- m
}

// doBatch checks out a member, runs the batch fn on its engine
// exclusively, and publishes however many requests fn reports served
// (zero on error, so a rejected batch refreshes the ledger snapshot
// without counting requests).
func (p *Pool) doBatch(fn func(eng *core.Engine) (int, error)) error {
	m := p.acquireBatch()
	served := 0
	var err error
	defer func() { p.releaseBatch(m, served) }()
	served, err = fn(m.eng)
	return err
}

// Batching reports whether the pool coalesces SpMV requests.
func (p *Pool) Batching() bool { return p.batch != nil }

// BatchStats is a pool batcher's observability snapshot.
type BatchStats struct {
	// Flushes counts SpMVBlock calls issued for coalesced batches.
	Flushes uint64
	// Requests counts the requests those flushes served; Requests/Flushes
	// is the mean batch occupancy.
	Requests uint64
	// Occupancy[i] counts flushes whose request count fell in histogram
	// bucket i (upper bounds occupancyBuckets; the last bucket is +Inf).
	Occupancy [len(occupancyBuckets) + 1]uint64
}

// BatchStats returns the batcher's counters; ok is false when batching
// is disabled for this pool.
func (p *Pool) BatchStats() (BatchStats, bool) {
	if p.batch == nil {
		return BatchStats{}, false
	}
	b := p.batch
	b.mu.Lock()
	s := BatchStats{Flushes: b.flushes, Requests: b.requests, Occupancy: b.occupancy}
	b.mu.Unlock()
	return s, true
}
