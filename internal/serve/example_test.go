package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/prap"
	"mwmerge/internal/serve"
)

// Example_batching configures a pool with same-matrix request
// coalescing: MaxBatch caps how many queued /v1/spmv requests one
// SpMVBlock flush may serve, and BatchWindow is how long the first
// request waits for company before the batch flushes anyway. Responses
// are bit-identical to unbatched serving; only the ledger changes — the
// matrix streams once per flush instead of once per request.
func Example_batching() {
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{
		{Row: 0, Col: 1, Val: 10},
		{Row: 1, Col: 0, Val: 20},
	})
	pool, _ := serve.NewPool(serve.PoolConfig{
		Name:   "tiny",
		Matrix: a,
		Engine: core.Config{
			ScratchpadBytes: 1024,
			ValueBytes:      8,
			MetaBytes:       8,
			Lanes:           4,
			Merge:           prap.Config{Q: 2, Ways: 64, FIFODepth: 4, DPage: 256, RecordBytes: 16},
			HBM:             mem.DefaultHBM(),
		},
		Size:        1,
		MaxQueue:    8,
		MaxBatch:    4,                    // up to 4 requests per flush
		BatchWindow: 2 * time.Millisecond, // wait at most 2ms for company
	})
	srv, _ := serve.NewServer(serve.Config{}, pool)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/spmv", "application/json",
		bytes.NewBufferString(`{"matrix": "tiny", "x": [1, 2]}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out struct {
		Y []float64 `json:"y"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)

	stats, _ := pool.BatchStats()
	fmt.Printf("batching=%v y=%v flushes=%d\n", pool.Batching(), out.Y, stats.Flushes)
	// Output: batching=true y=[20 20] flushes=1
}
