package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/prap"
	"mwmerge/internal/report"
	"mwmerge/internal/types"
	"mwmerge/internal/vector"
)

// testEngineConfig mirrors the core package's test design point: segment
// width 128, capacity 64×128 = 8192 (ITS capacity 4096).
func testEngineConfig() core.Config {
	return core.Config{
		ScratchpadBytes: 1024,
		ValueBytes:      8,
		MetaBytes:       8,
		Lanes:           4,
		Merge:           prap.Config{Q: 2, Ways: 64, FIFODepth: 4, DPage: 256, RecordBytes: 16},
		HBM:             mem.DefaultHBM(),
	}
}

func testGraph(t *testing.T, n uint64, deg float64, seed int64) *matrix.COO {
	t.Helper()
	a, err := graph.ErdosRenyi(n, deg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testX(n uint64, seed int64) vector.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := vector.NewDense(int(n))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func newTestPool(t *testing.T, name string, a *matrix.COO, size, maxQueue int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{Name: name, Matrix: a, Engine: testEngineConfig(), Size: size, MaxQueue: maxQueue})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// holdEngine checks the pool's engine out and keeps it busy until the
// returned release func is called. It waits for the hold to be in place
// before returning, so subsequent admissions observe a busy pool.
func holdEngine(t *testing.T, p *Pool) (release func()) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.Do(context.Background(), func(eng *core.Engine) error {
			close(started)
			<-gate
			return nil
		})
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("holder never got the engine: %v", err)
	}
	return func() {
		close(gate)
		if err := <-done; err != nil {
			t.Fatalf("holder: %v", err)
		}
	}
}

func TestPoolQueueFullRejection(t *testing.T) {
	p := newTestPool(t, "g", testGraph(t, 256, 4, 1), 1, 0)
	release := holdEngine(t, p)
	defer release()
	err := p.Do(context.Background(), func(eng *core.Engine) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
}

func TestPoolDeadlineRejection(t *testing.T) {
	p := newTestPool(t, "g", testGraph(t, 256, 4, 1), 1, 2)
	release := holdEngine(t, p)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func(eng *core.Engine) error { return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	release()

	// A context already expired at admission is rejected even when an
	// engine is idle: the request's deadline has passed, so no work may
	// start on its behalf.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	err = p.Do(expired, func(eng *core.Engine) error { return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context: got %v, want ErrDeadline", err)
	}
}

func TestPoolQueuedRequestRunsAfterRelease(t *testing.T) {
	p := newTestPool(t, "g", testGraph(t, 256, 4, 1), 1, 1)
	release := holdEngine(t, p)
	ran := make(chan struct{})
	go func() {
		if err := p.Do(context.Background(), func(eng *core.Engine) error { return nil }); err != nil {
			t.Errorf("queued request: %v", err)
		}
		close(ran)
	}()
	// Give the queued request time to take its queue token, then free
	// the engine; the queued request must complete.
	time.Sleep(10 * time.Millisecond)
	release()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never ran after engine release")
	}
}

// TestPoolLedgerAggregation checks the published-snapshot ledger: k
// identical requests spread across pool members must sum to exactly k
// times the single-run delta a fresh engine reports.
func TestPoolLedgerAggregation(t *testing.T) {
	a := testGraph(t, 512, 5, 2)
	x := testX(512, 3)
	p := newTestPool(t, "g", a, 3, 0)

	ref, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SpMV(a, x, nil); err != nil {
		t.Fatal(err)
	}
	delta := ref.Counters()
	refStats := ref.Stats()

	const k = 7
	var want report.Counters
	var wantStats core.RunStats
	for i := 0; i < k; i++ {
		if err := p.Do(context.Background(), func(eng *core.Engine) error {
			_, err := eng.SpMV(a, x, nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		want = want.Add(delta)
		wantStats = wantStats.Add(refStats)
	}
	got, gotStats, n := p.Ledger()
	if n != k {
		t.Fatalf("ledger requests = %d, want %d", n, k)
	}
	if got != want {
		t.Fatalf("aggregated counters diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if gotStats.Products != wantStats.Products || gotStats.IntermediateRecords != wantStats.IntermediateRecords {
		t.Fatalf("aggregated stats diverged:\ngot  %+v\nwant %+v", gotStats, wantStats)
	}
}

func newTestServer(t *testing.T, cfg Config, pools ...*Pool) *httptest.Server {
	t.Helper()
	s, err := NewServer(cfg, pools...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServerSpMVMatchesEngine(t *testing.T) {
	a := testGraph(t, 700, 4, 4)
	x := testX(700, 5)
	yIn := testX(700, 6)
	ts := newTestServer(t, Config{}, newTestPool(t, "g", a, 2, 2))

	eng, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SpMV(a, x, yIn)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/spmv", map[string]any{"matrix": "g", "x": x, "y_in": yIn})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Y vector.Dense `json:"y"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if d := out.Y.MaxAbsDiff(want); d != 0 {
		t.Fatalf("served y diverged from engine result by %g", d)
	}
}

func TestServerSpMSpVMatchesEngine(t *testing.T) {
	a := testGraph(t, 600, 5, 7)
	ts := newTestServer(t, Config{}, newTestPool(t, "g", a, 1, 1))

	keys := []uint64{3, 140, 300, 420, 599}
	vals := []float64{1.5, -2, 0.25, 4, -1}
	sx := vector.NewSparse(600, len(keys))
	for i, k := range keys {
		if err := sx.Append(types.Record{Key: k, Val: vals[i]}); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := eng.SpMSpV(a, sx)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/spmspv", map[string]any{"matrix": "g", "keys": keys, "vals": vals})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Y     vector.Dense     `json:"y"`
		Stats *spmspvStatsJSON `json:"spmspv_stats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if d := out.Y.MaxAbsDiff(want); d != 0 {
		t.Fatalf("served y diverged from engine result by %g", d)
	}
	if out.Stats == nil || out.Stats.EntriesVisited != wantStats.EntriesVisited ||
		out.Stats.SegmentsActive != wantStats.SegmentsActive {
		t.Fatalf("served stats %+v, want %+v", out.Stats, wantStats)
	}
}

func TestServerPageRankMatchesEngine(t *testing.T) {
	a := testGraph(t, 500, 6, 8)
	ts := newTestServer(t, Config{}, newTestPool(t, "g", a, 1, 1))

	eng, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, wantIters, err := eng.PageRank(a, 0.85, 1e-9, 20, false)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/pagerank", map[string]any{"matrix": "g", "damping": 0.85, "tol": 1e-9, "max_iters": 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Y          vector.Dense `json:"y"`
		Iterations int          `json:"iterations"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if d := out.Y.MaxAbsDiff(want); d != 0 {
		t.Fatalf("served ranks diverged by %g", d)
	}
	if out.Iterations != wantIters {
		t.Fatalf("served %d iterations, engine ran %d", out.Iterations, wantIters)
	}
}

func TestServerStatusCodes(t *testing.T) {
	// 5000 rows: within the 8192 engine capacity (so the pool warms),
	// above the 4096 ITS-overlap capacity (so overlap requests are
	// rejected at admission with 422).
	a := testGraph(t, 5000, 2, 9)
	p := newTestPool(t, "g", a, 1, 1)
	ts := newTestServer(t, Config{}, p)

	x := testX(5000, 10)
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"unknown-matrix", "/v1/spmv", map[string]any{"matrix": "nope", "x": x}, http.StatusNotFound},
		{"wrong-dimension", "/v1/spmv", map[string]any{"matrix": "g", "x": []float64{1, 2}}, http.StatusBadRequest},
		{"negative-deadline", "/v1/spmv", map[string]any{"matrix": "g", "x": x, "deadline_ms": -1}, http.StatusBadRequest},
		{"keys-vals-mismatch", "/v1/spmspv", map[string]any{"matrix": "g", "keys": []uint64{1}, "vals": []float64{}}, http.StatusBadRequest},
		{"overlap-over-capacity", "/v1/iterate", map[string]any{"matrix": "g", "x0": x, "iterations": 2, "overlap": true}, http.StatusUnprocessableEntity},
		{"pagerank-overlap-over-capacity", "/v1/pagerank", map[string]any{"matrix": "g", "overlap": true}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("rejection carries no error body: %s", body)
			}
		})
	}

	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/spmv", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// 429 when the single engine is held and the queue is full, 503 when
	// the request's deadline expires while queued.
	release := holdEngine(t, p)
	occupier := make(chan error, 1)
	go func() { // occupy the single queue slot for the duration
		occupier <- p.Do(context.Background(), func(eng *core.Engine) error { return nil })
	}()
	time.Sleep(10 * time.Millisecond)
	resp2, body2 := postJSON(t, ts.URL+"/v1/spmv", map[string]any{"matrix": "g", "x": x})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy pool: status %d, want 429 (%s)", resp2.StatusCode, body2)
	}
	release()
	// Drain the queued request so the pool is quiescent before the
	// deadline scenario below.
	if err := <-occupier; err != nil {
		t.Fatalf("queued occupier: %v", err)
	}

	release2 := holdEngine(t, p)
	resp3, body3 := postJSON(t, ts.URL+"/v1/spmv", map[string]any{"matrix": "g", "x": x, "deadline_ms": 20})
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued past deadline: status %d, want 503 (%s)", resp3.StatusCode, body3)
	}
	release2()
}

// TestServerPerRequestReport checks the on-demand run report: its totals
// must be exactly the counter delta a fresh engine records for the same
// operation.
func TestServerPerRequestReport(t *testing.T) {
	a := testGraph(t, 512, 5, 11)
	x := testX(512, 12)
	ts := newTestServer(t, Config{}, newTestPool(t, "g", a, 1, 1))

	eng, err := core.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SpMV(a, x, nil); err != nil {
		t.Fatal(err)
	}
	want := report.NewReport(report.Meta{}, eng.Counters()).Totals

	resp, body := postJSON(t, ts.URL+"/v1/spmv", map[string]any{"matrix": "g", "x": x, "report": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Report *report.Report `json:"report"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Report == nil {
		t.Fatal("report requested but absent from response")
	}
	if out.Report.Totals != want {
		t.Fatalf("per-request report totals diverged:\ngot  %+v\nwant %+v", out.Report.Totals, want)
	}
	if !strings.Contains(out.Report.Meta.Workload, "spmv") || !strings.Contains(out.Report.Meta.Workload, "matrix=g") {
		t.Fatalf("report workload %q does not identify the request", out.Report.Meta.Workload)
	}
}

// TestServerMetricsMatchesLedger drives mixed requests over two pools
// and checks that /metrics renders exactly the aggregated pool ledger —
// the same Prometheus exposition a report built from the summed
// published snapshots produces — followed by the serving gauges.
func TestServerMetricsMatchesLedger(t *testing.T) {
	a1 := testGraph(t, 512, 5, 13)
	a2 := testGraph(t, 300, 4, 14)
	p1 := newTestPool(t, "g1", a1, 2, 1)
	p2 := newTestPool(t, "g2", a2, 1, 1)
	s, err := NewServer(Config{}, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x1 := testX(512, 15)
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/spmv", map[string]any{"matrix": "g1", "x": x1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spmv: %d %s", resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/pagerank", map[string]any{"matrix": "g2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pagerank: %d %s", resp.StatusCode, body)
	}

	// The aggregated ledger must equal a direct engine rerun of the same
	// request mix.
	e1, _ := core.New(testEngineConfig())
	for i := 0; i < 3; i++ {
		if _, err := e1.SpMV(a1, x1, nil); err != nil {
			t.Fatal(err)
		}
	}
	e2, _ := core.New(testEngineConfig())
	if _, _, err := e2.PageRank(a2, 0.85, 1e-9, 50, false); err != nil {
		t.Fatal(err)
	}
	want := e1.Counters().Add(e2.Counters())
	if got := s.AggregatedLedger(); got != want {
		t.Fatalf("aggregated ledger diverged from direct engines:\ngot  %+v\nwant %+v", got, want)
	}

	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(scrape.Body); err != nil {
		t.Fatal(err)
	}
	scrape.Body.Close()
	bodyStr := buf.String()

	var expected bytes.Buffer
	if err := report.NewReport(report.Meta{Workload: "spmvd"}, want).WritePrometheus(&expected); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bodyStr, expected.String()) {
		t.Fatalf("/metrics does not open with the aggregated-ledger exposition:\n%s\n--- want prefix ---\n%s", bodyStr, expected.String())
	}
	for _, line := range []string{
		`mwmerge_serve_requests_total{pool="g1"} 3`,
		`mwmerge_serve_requests_total{pool="g2"} 1`,
		"mwmerge_serve_served_total 4",
		`mwmerge_serve_rejected_total{reason="queue_full"} 0`,
		`mwmerge_serve_pool_engines{pool="g1"} 2`,
	} {
		if !strings.Contains(bodyStr, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	a := testGraph(t, 256, 4, 16)
	ts := newTestServer(t, Config{}, newTestPool(t, "g", a, 2, 1))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Pools) != 1 {
		t.Fatalf("health %+v", h)
	}
	if h.Pools[0].Matrix != "g" || h.Pools[0].Rows != 256 || h.Pools[0].Engines != 2 {
		t.Fatalf("pool inventory %+v", h.Pools[0])
	}
}

func TestNewServerRejectsDuplicatePools(t *testing.T) {
	a := testGraph(t, 128, 3, 17)
	p1 := newTestPool(t, "g", a, 1, 0)
	p2 := newTestPool(t, "g", a, 1, 0)
	if _, err := NewServer(Config{}, p1, p2); err == nil {
		t.Fatal("duplicate pool names accepted")
	}
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("empty server accepted")
	}
}

func TestNewPoolRejectsRecorder(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Recorder = report.NewRecorder()
	_, err := NewPool(PoolConfig{Name: "g", Matrix: testGraph(t, 128, 3, 18), Engine: cfg})
	if err == nil {
		t.Fatal("recorder-carrying pool config accepted")
	}
	if !strings.Contains(err.Error(), "recorder") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
