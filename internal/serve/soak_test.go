package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mwmerge/internal/core"
	"mwmerge/internal/report"
	"mwmerge/internal/types"
	"mwmerge/internal/vector"
)

// soakOp is one precomputed request: its HTTP form plus the bit-exact
// result and ledger delta a fresh engine produces for it.
type soakOp struct {
	path  string
	body  map[string]any
	want  vector.Dense
	delta report.Counters
}

// TestServeSoak is the serving concurrency hammer: several clients fire
// interleaved SpMV / SpMSpV / Iterate / PageRank requests at a shared
// pool, across step-1 × step-2 parallelism configs, and every response
// must match a sequential fresh-engine run bit for bit. Afterwards the
// aggregated pool ledger must equal the sum of the per-op deltas
// exactly — concurrency may reorder requests but never change what any
// of them computed or charged. Run under -race this also exercises the
// pool's checkout/publish paths against concurrent /metrics scrapes.
func TestServeSoak(t *testing.T) {
	for _, workers := range []int{1, 2} {
		for _, mergeWorkers := range []int{1, 2} {
			t.Run(fmt.Sprintf("w%d/mw%d", workers, mergeWorkers), func(t *testing.T) {
				soakOnce(t, workers, mergeWorkers)
			})
		}
	}
}

func soakOnce(t *testing.T, workers, mergeWorkers int) {
	t.Helper()
	cfg := testEngineConfig()
	cfg.Workers = workers
	cfg.Merge.MergeWorkers = mergeWorkers

	const (
		n       = 512
		clients = 6
		rounds  = 4 // ops per client
	)
	a := testGraph(t, n, 5, 21)

	// Precompute the request mix and its sequential fresh-engine
	// reference. Op kinds cycle so every client interleaves all four.
	fresh := func() *core.Engine {
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	var ops []soakOp
	for i := 0; i < clients*rounds; i++ {
		e := fresh()
		var op soakOp
		switch i % 4 {
		case 0:
			x := testX(n, int64(100+i))
			y, err := e.SpMV(a, x, nil)
			if err != nil {
				t.Fatal(err)
			}
			op = soakOp{"/v1/spmv", map[string]any{"matrix": "g", "x": x}, y, e.Counters()}
		case 1:
			sx := soakFrontier(t, n, i)
			keys := make([]uint64, 0, len(sx.Recs))
			vals := make([]float64, 0, len(sx.Recs))
			for _, r := range sx.Recs {
				keys = append(keys, r.Key)
				vals = append(vals, r.Val)
			}
			y, _, err := e.SpMSpV(a, sx)
			if err != nil {
				t.Fatal(err)
			}
			op = soakOp{"/v1/spmspv", map[string]any{"matrix": "g", "keys": keys, "vals": vals}, y, e.Counters()}
		case 2:
			x := testX(n, int64(200+i))
			overlap := i%8 == 2
			res, err := e.Iterate(a, x, core.IterateOptions{Iterations: 2, Overlap: overlap, Damping: 0.85})
			if err != nil {
				t.Fatal(err)
			}
			op = soakOp{"/v1/iterate",
				map[string]any{"matrix": "g", "x0": x, "iterations": 2, "overlap": overlap, "damping": 0.85},
				res.X, e.Counters()}
		default:
			overlap := i%8 == 7
			y, _, err := e.PageRank(a, 0.9, 1e-8, 6, overlap)
			if err != nil {
				t.Fatal(err)
			}
			op = soakOp{"/v1/pagerank",
				map[string]any{"matrix": "g", "damping": 0.9, "tol": 1e-8, "max_iters": 6, "overlap": overlap},
				y, e.Counters()}
		}
		ops = append(ops, op)
	}
	var wantLedger report.Counters
	for _, op := range ops {
		wantLedger = wantLedger.Add(op.delta)
	}

	// Pool smaller than the client count so checkouts genuinely contend;
	// queue deep enough that no request is rejected.
	p, err := NewPool(PoolConfig{Name: "g", Matrix: a, Engine: cfg, Size: 3, MaxQueue: clients * rounds})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	errs := make(chan error, clients+1)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(ops); i += clients {
				op := ops[i]
				status, body, err := soakPost(ts.URL+op.path, op.body)
				if err != nil {
					errs <- fmt.Errorf("client %d op %d: %v", c, i, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d op %d (%s): status %d: %s", c, i, op.path, status, body)
					return
				}
				var out struct {
					Y vector.Dense `json:"y"`
				}
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("client %d op %d: %v", c, i, err)
					return
				}
				if d := out.Y.MaxAbsDiff(op.want); d != 0 {
					errs <- fmt.Errorf("client %d op %d (%s): served result diverged from sequential fresh-engine run by %g", c, i, op.path, d)
					return
				}
			}
		}(c)
	}

	// A concurrent scraper: /metrics must stay consistent (and race-free)
	// while requests are in flight.
	scrapeStop := make(chan struct{})
	scrapeExit := make(chan struct{})
	go func() {
		defer close(scrapeExit)
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errs <- fmt.Errorf("scrape: %v", err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	wg.Wait()
	close(scrapeStop)
	<-scrapeExit
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	got, _, served := p.Ledger()
	if served != uint64(len(ops)) {
		t.Fatalf("ledger counted %d requests, want %d", served, len(ops))
	}
	if got != wantLedger {
		t.Fatalf("aggregated ledger diverged from sequential reference:\ngot  %+v\nwant %+v", got, wantLedger)
	}
}

// soakFrontier deterministically builds an 8-nonzero frontier whose keys
// spread across several stripes (segment width 128 at the test config).
func soakFrontier(t *testing.T, dim uint64, seed int) *vector.Sparse {
	t.Helper()
	stride := dim / 8
	sx := vector.NewSparse(int(dim), 8)
	for j := uint64(0); j < 8; j++ {
		k := j*stride + uint64(seed)%stride
		if err := sx.Append(types.Record{Key: k, Val: 1 + float64(j) + float64(seed%3)}); err != nil {
			t.Fatal(err)
		}
	}
	return sx
}

// soakPost is postJSON without the *testing.T: client goroutines must
// report failures through channels, not t.Fatal.
func soakPost(url string, body map[string]any) (int, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}
