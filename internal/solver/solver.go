// Package solver builds the iterative numerical kernels the paper's
// introduction motivates ("numerous scientific applications") on top of
// the Two-Step SpMV engine: power iteration, Jacobi relaxation and
// conjugate gradients. Every multiply goes through the accelerator model,
// so a solve carries the full traffic ledger of the machine it would run
// on.
package solver

import (
	"fmt"
	"math"

	"mwmerge/internal/matrix"
	"mwmerge/internal/vector"
)

// Multiplier is the SpMV contract the solvers need; *core.Engine
// satisfies it.
type Multiplier interface {
	SpMV(a *matrix.COO, x, yIn vector.Dense) (vector.Dense, error)
}

// Result summarizes an iterative solve.
type Result struct {
	X          vector.Dense
	Iterations int
	Residual   float64
	Converged  bool
}

// PowerIteration finds the dominant eigenvalue/eigenvector pair of A by
// repeated multiplication and normalization. The Result is populated on
// every exit path: an SpMV failure still reports the iterations already
// completed (and the iterate they produced), and a non-converged run
// carries the last eigenvalue delta as its Residual.
func PowerIteration(m Multiplier, a *matrix.COO, tol float64, maxIters int) (float64, Result, error) {
	if a.Rows != a.Cols {
		return 0, Result{}, fmt.Errorf("solver: power iteration needs a square matrix")
	}
	n := int(a.Rows)
	x := vector.NewDense(n)
	x.Fill(1 / math.Sqrt(float64(n)))
	var lambda, delta float64
	for it := 1; it <= maxIters; it++ {
		y, err := m.SpMV(a, x, nil)
		if err != nil {
			return lambda, Result{X: x, Iterations: it - 1, Residual: delta},
				fmt.Errorf("solver: iteration %d: %w", it, err)
		}
		norm := math.Sqrt(dot(y, y))
		if norm == 0 {
			return 0, Result{X: y, Iterations: it}, fmt.Errorf("solver: A annihilated the iterate")
		}
		newLambda := dot(x, y) // Rayleigh quotient with unit x
		y.Scale(1 / norm)
		delta = math.Abs(newLambda - lambda)
		x, lambda = y, newLambda
		if it > 1 && delta <= tol*math.Abs(lambda) {
			return lambda, Result{X: x, Iterations: it, Residual: delta, Converged: true}, nil
		}
	}
	return lambda, Result{X: x, Iterations: maxIters, Residual: delta, Converged: false}, nil
}

// Jacobi solves A·x = b by diagonal relaxation: x' = D⁻¹(b − R·x) with
// R = A − D. Requires a nonzero diagonal; converges for diagonally
// dominant systems.
func Jacobi(m Multiplier, a *matrix.COO, b vector.Dense, tol float64, maxIters int) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("solver: Jacobi needs a square matrix")
	}
	if uint64(len(b)) != a.Rows {
		return Result{}, fmt.Errorf("solver: b dimension %d != %d", len(b), a.Rows)
	}
	n := int(a.Rows)
	diag := vector.NewDense(n)
	offEntries := make([]matrix.Entry, 0, a.NNZ())
	for _, e := range a.Entries {
		if e.Row == e.Col {
			diag[e.Row] += e.Val
		} else {
			offEntries = append(offEntries, e)
		}
	}
	for i, d := range diag {
		if d == 0 {
			return Result{}, fmt.Errorf("solver: zero diagonal at row %d", i)
		}
	}
	r, err := matrix.NewCOO(a.Rows, a.Cols, offEntries)
	if err != nil {
		return Result{}, err
	}

	x := vector.NewDense(n)
	for it := 1; it <= maxIters; it++ {
		rx, err := m.SpMV(r, x, nil)
		if err != nil {
			return Result{}, fmt.Errorf("solver: iteration %d: %w", it, err)
		}
		next := vector.NewDense(n)
		var delta float64
		for i := range next {
			next[i] = (b[i] - rx[i]) / diag[i]
			delta += math.Abs(next[i] - x[i])
		}
		x = next
		if delta <= tol {
			res, err := residualNorm(m, a, x, b)
			if err != nil {
				return Result{}, err
			}
			return Result{X: x, Iterations: it, Residual: res, Converged: true}, nil
		}
	}
	res, err := residualNorm(m, a, x, b)
	if err != nil {
		return Result{}, err
	}
	return Result{X: x, Iterations: maxIters, Residual: res, Converged: false}, nil
}

// CG solves A·x = b for symmetric positive-definite A by conjugate
// gradients; every A·p product runs on the engine.
func CG(m Multiplier, a *matrix.COO, b vector.Dense, tol float64, maxIters int) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("solver: CG needs a square matrix")
	}
	if uint64(len(b)) != a.Rows {
		return Result{}, fmt.Errorf("solver: b dimension %d != %d", len(b), a.Rows)
	}
	n := int(a.Rows)
	x := vector.NewDense(n)
	r := b.Clone() // r = b - A·0
	p := r.Clone()
	rs := dot(r, r)
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		return Result{X: x, Iterations: 0, Converged: true}, nil
	}
	for it := 1; it <= maxIters; it++ {
		ap, err := m.SpMV(a, p, nil)
		if err != nil {
			return Result{}, fmt.Errorf("solver: iteration %d: %w", it, err)
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return Result{X: x, Iterations: it}, fmt.Errorf("solver: matrix not positive definite (p·Ap = %g)", pap)
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) <= tol*bNorm {
			return Result{X: x, Iterations: it, Residual: math.Sqrt(rsNew) / bNorm, Converged: true}, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return Result{X: x, Iterations: maxIters, Residual: math.Sqrt(rs) / bNorm, Converged: false}, nil
}

// residualNorm returns ‖b − A·x‖₂.
func residualNorm(m Multiplier, a *matrix.COO, x, b vector.Dense) (float64, error) {
	ax, err := m.SpMV(a, x, nil)
	if err != nil {
		return 0, err
	}
	var s float64
	for i := range b {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

func dot(a, b vector.Dense) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SPDLaplacian builds a symmetric positive-definite test system: the
// graph Laplacian of the symmetrized input plus a ridge, a standard CG
// fixture.
func SPDLaplacian(a *matrix.COO, ridge float64) (*matrix.COO, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solver: Laplacian needs a square matrix")
	}
	// Symmetrize pattern with unit weights.
	sym := make(map[[2]uint64]struct{}, 2*a.NNZ())
	for _, e := range a.Entries {
		if e.Row == e.Col {
			continue
		}
		sym[[2]uint64{e.Row, e.Col}] = struct{}{}
		sym[[2]uint64{e.Col, e.Row}] = struct{}{}
	}
	deg := make([]float64, a.Rows)
	entries := make([]matrix.Entry, 0, len(sym)+int(a.Rows))
	for k := range sym {
		entries = append(entries, matrix.Entry{Row: k[0], Col: k[1], Val: -1})
		deg[k[0]]++
	}
	for i := uint64(0); i < a.Rows; i++ {
		entries = append(entries, matrix.Entry{Row: i, Col: i, Val: deg[i] + ridge})
	}
	return matrix.NewCOO(a.Rows, a.Cols, entries)
}
