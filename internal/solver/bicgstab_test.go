package solver

import (
	"math"
	"testing"

	"mwmerge/internal/core"
	"mwmerge/internal/matrix"
	"mwmerge/internal/vector"
)

func TestBiCGSTABSolvesNonSymmetric(t *testing.T) {
	// Diagonally dominant but asymmetric system.
	a, b := diagDominant(t, 400, 11)
	eng := engine(t)
	res, err := BiCGSTAB(eng, a, b, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: residual %g after %d iters", res.Residual, res.Iterations)
	}
	ax, _ := core.ReferenceSpMV(a, res.X, nil)
	var worst float64
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("solution residual component %g", worst)
	}
}

func TestBiCGSTABFasterThanJacobi(t *testing.T) {
	// Weaken the diagonal so Jacobi's contraction factor nears 1: the
	// Krylov method should then need far fewer SpMVs.
	a, b := diagDominant(t, 500, 12)
	weak := a.Clone()
	for i, e := range weak.Entries {
		if e.Row == e.Col {
			weak.Entries[i].Val = 0.4 + 0.7*e.Val // still dominant, barely
		}
	}
	a = weak
	jac, err := Jacobi(engine(t), a, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := BiCGSTAB(engine(t), a, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !jac.Converged || !bi.Converged {
		t.Fatal("both solvers must converge on a dominant system")
	}
	// Each BiCGSTAB iteration does 2 SpMVs; compare SpMV counts.
	if 2*bi.Iterations >= jac.Iterations {
		t.Errorf("BiCGSTAB used %d SpMVs vs Jacobi %d; expected a Krylov win",
			2*bi.Iterations, jac.Iterations)
	}
}

func TestBiCGSTABValidation(t *testing.T) {
	eng := engine(t)
	rect, _ := matrix.NewCOO(2, 3, []matrix.Entry{{Row: 0, Col: 0, Val: 1}})
	if _, err := BiCGSTAB(eng, rect, vector.NewDense(2), 1e-9, 10); err == nil {
		t.Error("rectangular matrix accepted")
	}
	sq, _ := matrix.NewCOO(2, 2, []matrix.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	if _, err := BiCGSTAB(eng, sq, vector.NewDense(3), 1e-9, 10); err == nil {
		t.Error("wrong b accepted")
	}
	// Zero RHS converges immediately.
	res, err := BiCGSTAB(eng, sq, vector.NewDense(2), 1e-9, 10)
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS: %+v, %v", res, err)
	}
}

func TestBiCGSTABBreakdownSurfaces(t *testing.T) {
	// A singular matrix (zero row) cannot be solved; the method must
	// fail loudly rather than return garbage.
	a, _ := matrix.NewCOO(3, 3, []matrix.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		// row 2 is all zero
	})
	b := vector.Dense{1, 1, 1}
	res, err := BiCGSTAB(engine(t), a, b, 1e-12, 50)
	if err == nil && res.Converged {
		t.Error("singular system reported as solved")
	}
}
