package solver

import (
	"math"
	"math/rand"
	"testing"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/prap"
	"mwmerge/internal/vector"
)

// engine builds a small functional accelerator for the solves.
func engine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Config{
		ScratchpadBytes: 8 << 10, ValueBytes: 8, MetaBytes: 8, Lanes: 8,
		Merge: prap.Config{Q: 2, Ways: 64, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16},
		HBM:   mem.DefaultHBM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPowerIterationDiagonal(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue = max diagonal entry.
	entries := []matrix.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 5}, {Row: 2, Col: 2, Val: 3},
	}
	a, _ := matrix.NewCOO(3, 3, entries)
	lambda, res, err := PowerIteration(engine(t), a, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(lambda-5) > 1e-6 {
		t.Errorf("dominant eigenvalue %g, want 5", lambda)
	}
	// Eigenvector concentrates on index 1.
	if math.Abs(math.Abs(res.X[1])-1) > 1e-4 {
		t.Errorf("eigenvector %v", res.X)
	}
}

func TestPowerIterationRejectsRectangular(t *testing.T) {
	a, _ := matrix.NewCOO(2, 3, []matrix.Entry{{Row: 0, Col: 0, Val: 1}})
	if _, _, err := PowerIteration(engine(t), a, 1e-9, 10); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

// diagDominant builds a random strictly diagonally dominant system.
func diagDominant(t *testing.T, n uint64, seed int64) (*matrix.COO, vector.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var entries []matrix.Entry
	rowAbs := make([]float64, n)
	for i := uint64(0); i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Uint64() % n
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			entries = append(entries, matrix.Entry{Row: i, Col: j, Val: v})
			rowAbs[i] += math.Abs(v)
		}
	}
	for i := uint64(0); i < n; i++ {
		entries = append(entries, matrix.Entry{Row: i, Col: i, Val: rowAbs[i] + 1 + rng.Float64()})
	}
	a, err := matrix.NewCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	b := vector.NewDense(int(n))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func TestJacobiSolves(t *testing.T) {
	a, b := diagDominant(t, 500, 1)
	eng := engine(t)
	res, err := Jacobi(eng, a, b, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge (residual %g)", res.Residual)
	}
	if res.Residual > 1e-8 {
		t.Errorf("residual %g", res.Residual)
	}
	if eng.Traffic().Total() == 0 {
		t.Error("solve left no traffic on the accelerator ledger")
	}
}

func TestJacobiRejectsZeroDiagonal(t *testing.T) {
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 2}})
	b := vector.Dense{1, 1}
	if _, err := Jacobi(engine(t), a, b, 1e-9, 10); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestJacobiRejectsBadB(t *testing.T) {
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	if _, err := Jacobi(engine(t), a, vector.Dense{1}, 1e-9, 10); err == nil {
		t.Error("wrong b dimension accepted")
	}
}

func TestCGSolvesLaplacianSystem(t *testing.T) {
	g, err := graph.ErdosRenyi(800, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SPDLaplacian(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := vector.NewDense(int(a.Rows))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	eng := engine(t)
	res, err := CG(eng, a, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %g after %d iters", res.Residual, res.Iterations)
	}
	// Verify against the dense reference.
	ax, _ := core.ReferenceSpMV(a, res.X, nil)
	var worst float64
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("CG solution residual component %g", worst)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	// A negative-definite diagonal should trip the p·Ap check.
	a, _ := matrix.NewCOO(3, 3, []matrix.Entry{
		{Row: 0, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: -1},
	})
	b := vector.Dense{1, 2, 3}
	if _, err := CG(engine(t), a, b, 1e-9, 10); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	res, err := CG(engine(t), a, vector.NewDense(2), 1e-9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.X.NNZ() != 0 {
		t.Error("zero RHS should converge to zero immediately")
	}
}

func TestSPDLaplacianProperties(t *testing.T) {
	g, _ := graph.ErdosRenyi(200, 3, 4)
	l, err := SPDLaplacian(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric.
	tr := l.Transpose()
	for i := range l.Entries {
		if l.Entries[i] != tr.Entries[i] {
			t.Fatal("Laplacian not symmetric")
		}
	}
	// Row sums equal the ridge.
	sums := make([]float64, l.Rows)
	for _, e := range l.Entries {
		sums[e.Row] += e.Val
	}
	for i, s := range sums {
		if math.Abs(s-0.5) > 1e-12 {
			t.Fatalf("row %d sums to %g, want ridge 0.5", i, s)
		}
	}
}
