package solver

import (
	"errors"
	"testing"

	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/vector"
)

// failingMultiplier delegates to an inner Multiplier for the first
// `after` calls, then fails every subsequent multiply.
type failingMultiplier struct {
	inner Multiplier
	after int
	calls int
}

var errInjected = errors.New("injected SpMV failure")

func (f *failingMultiplier) SpMV(a *matrix.COO, x, yIn vector.Dense) (vector.Dense, error) {
	f.calls++
	if f.calls > f.after {
		return nil, errInjected
	}
	return f.inner.SpMV(a, x, yIn)
}

// TestPowerIterationErrorKeepsProgress pins the SpMV-failure contract:
// the Result must still report the iterations already completed and the
// iterate they produced, not a zero value.
func TestPowerIterationErrorKeepsProgress(t *testing.T) {
	a, err := graph.ErdosRenyi(200, 4, 9)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	m := &failingMultiplier{inner: engine(t), after: 3}
	_, res, err := PowerIteration(m, a, 1e-12, 50)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3 (the completed multiplies)", res.Iterations)
	}
	if len(res.X) != 200 {
		t.Errorf("len(X) = %d, want the last good iterate (200)", len(res.X))
	}
	if res.Converged {
		t.Error("Converged set on the error path")
	}
}

// TestPowerIterationNonConvergedResidual pins the non-converged return:
// Residual carries the last eigenvalue delta instead of zero.
func TestPowerIterationNonConvergedResidual(t *testing.T) {
	a, err := graph.ErdosRenyi(300, 5, 11)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	_, res, err := PowerIteration(engine(t), a, 0, 3)
	if err != nil {
		t.Fatalf("PowerIteration: %v", err)
	}
	if res.Converged {
		t.Fatal("converged with tol 0 in 3 iterations; fixture too easy")
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3", res.Iterations)
	}
	if res.Residual <= 0 {
		t.Errorf("Residual = %g, want the last eigenvalue delta (> 0)", res.Residual)
	}
}
