package solver

import (
	"fmt"
	"math"

	"mwmerge/internal/matrix"
	"mwmerge/internal/vector"
)

// BiCGSTAB solves A·x = b for general (non-symmetric) A — the solver a
// user reaches for when CG's symmetry requirement fails. Two SpMV
// products per iteration, both on the accelerator model.
func BiCGSTAB(m Multiplier, a *matrix.COO, b vector.Dense, tol float64, maxIters int) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("solver: BiCGSTAB needs a square matrix")
	}
	if uint64(len(b)) != a.Rows {
		return Result{}, fmt.Errorf("solver: b dimension %d != %d", len(b), a.Rows)
	}
	n := int(a.Rows)
	x := vector.NewDense(n)
	r := b.Clone() // r = b - A·0
	rHat := r.Clone()
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		return Result{X: x, Iterations: 0, Converged: true}, nil
	}

	rho, alpha, omega := 1.0, 1.0, 1.0
	v := vector.NewDense(n)
	p := vector.NewDense(n)
	for it := 1; it <= maxIters; it++ {
		rhoNew := dot(rHat, r)
		if rhoNew == 0 {
			return Result{X: x, Iterations: it}, fmt.Errorf("solver: BiCGSTAB breakdown (rho = 0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		var err error
		v, err = m.SpMV(a, p, nil)
		if err != nil {
			return Result{}, fmt.Errorf("solver: iteration %d: %w", it, err)
		}
		denom := dot(rHat, v)
		if denom == 0 {
			return Result{X: x, Iterations: it}, fmt.Errorf("solver: BiCGSTAB breakdown (rHat·v = 0)")
		}
		alpha = rhoNew / denom
		s := vector.NewDense(n)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := math.Sqrt(dot(s, s)); res <= tol*bNorm {
			for i := range x {
				x[i] += alpha * p[i]
			}
			return Result{X: x, Iterations: it, Residual: res / bNorm, Converged: true}, nil
		}
		tv, err := m.SpMV(a, s, nil)
		if err != nil {
			return Result{}, fmt.Errorf("solver: iteration %d: %w", it, err)
		}
		tt := dot(tv, tv)
		if tt == 0 {
			return Result{X: x, Iterations: it}, fmt.Errorf("solver: BiCGSTAB breakdown (t = 0)")
		}
		omega = dot(tv, s) / tt
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*tv[i]
		}
		if res := math.Sqrt(dot(r, r)); res <= tol*bNorm {
			return Result{X: x, Iterations: it, Residual: res / bNorm, Converged: true}, nil
		}
		if omega == 0 {
			return Result{X: x, Iterations: it}, fmt.Errorf("solver: BiCGSTAB breakdown (omega = 0)")
		}
		rho = rhoNew
	}
	res := math.Sqrt(dot(r, r)) / bNorm
	return Result{X: x, Iterations: maxIters, Residual: res, Converged: false}, nil
}
