package solver

import (
	"testing"

	"mwmerge/internal/matrix"
	"mwmerge/internal/vector"
)

func TestPowerIterationAnnihilation(t *testing.T) {
	// The zero matrix annihilates every iterate: must error, not hang.
	a, _ := matrix.NewCOO(3, 3, []matrix.Entry{{Row: 0, Col: 0, Val: 0}})
	if _, _, err := PowerIteration(engine(t), a, 1e-9, 10); err == nil {
		t.Error("zero matrix accepted")
	}
}

func TestPowerIterationNonConvergence(t *testing.T) {
	// A tiny spectral gap (1 vs 0.999) converges far too slowly for a
	// 3-iteration budget at 1e-14: the result must report failure.
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 0.999},
	})
	_, res, err := PowerIteration(engine(t), a, 1e-14, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("slow iteration reported as converged")
	}
	if res.Iterations != 3 {
		t.Errorf("stopped after %d iterations", res.Iterations)
	}
}

func TestJacobiNonConvergence(t *testing.T) {
	// A non-diagonally-dominant system diverges under Jacobi; the
	// result must report Converged=false with the residual.
	a, _ := matrix.NewCOO(2, 2, []matrix.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 5},
		{Row: 1, Col: 0, Val: 5}, {Row: 1, Col: 1, Val: 1},
	})
	res, err := Jacobi(engine(t), a, vector.Dense{1, 1}, 1e-12, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("divergent Jacobi reported as converged")
	}
	if res.Residual <= 0 {
		t.Error("no residual reported")
	}
}

func TestCGMaxItersPath(t *testing.T) {
	// An ill-conditioned SPD system with a tiny iteration budget must
	// return unconverged with a meaningful residual.
	var entries []matrix.Entry
	n := uint64(50)
	for i := uint64(0); i < n; i++ {
		entries = append(entries, matrix.Entry{Row: i, Col: i, Val: float64(i + 1)})
		if i+1 < n {
			entries = append(entries, matrix.Entry{Row: i, Col: i + 1, Val: -0.4})
			entries = append(entries, matrix.Entry{Row: i + 1, Col: i, Val: -0.4})
		}
	}
	a, _ := matrix.NewCOO(n, n, entries)
	b := vector.NewDense(int(n))
	b.Fill(1)
	res, err := CG(engine(t), a, b, 1e-15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("2-iteration CG reported converged at 1e-15")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestSPDLaplacianRejectsRectangular(t *testing.T) {
	a, _ := matrix.NewCOO(2, 3, []matrix.Entry{{Row: 0, Col: 1, Val: 1}})
	if _, err := SPDLaplacian(a, 1); err == nil {
		t.Error("rectangular Laplacian accepted")
	}
}
