package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/perfmodel"
	"mwmerge/internal/spgemm"
)

// RunFig2 reproduces the fabricated-ASIC specification table of the
// paper's Fig. 2 from our calibrated models: frequency, die area (with
// the per-block breakdown behind it), and power.
func RunFig2(w io.Writer, opt Options) error {
	d := perfmodel.ASICDesign(perfmodel.TS)
	area, err := perfmodel.Area16nm().CoreArea(d)
	if err != nil {
		return err
	}
	t := newTable("Specification", "Paper (Fig. 2)", "Model")
	t.add("Technology", "16nm FinFET", "16nm coefficients")
	t.add("Frequency", "1.4 GHz", fmt.Sprintf("%.1f GHz", d.FreqHz/1e9))
	t.add("Occupied area", "7.5 mm2", fmt.Sprintf("%.1f mm2", area.Total()))
	t.add("Leakage power", "0.10 W", fmt.Sprintf("%.2f W", d.Energy.CoreLeakageW))
	t.add("Dynamic power", "3.01 W", fmt.Sprintf("%.2f W", d.Energy.CoreDynamicW))
	t.add("Total power", "3.11 W", fmt.Sprintf("%.2f W", d.Energy.CoreDynamicW+d.Energy.CoreLeakageW))
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nArea breakdown: %v\n", area)
	fmt.Fprintln(w, "FIFO SRAM dominates logic thanks to the activated-path sorter sharing (Fig. 6).")
	return nil
}

// RunBeyondSpMV exercises the conclusion's claim that the merge machinery
// generalizes beyond SpMV: sparse matrix-matrix multiplication executed
// row-by-row on the cycle-modeled merge cores, with merge-side statistics.
func RunBeyondSpMV(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 2048 {
		dim = 2048
	}
	t := newTable("Workload", "nnz(A)", "nnz(B)", "nnz(C)", "FLOPs", "Merge compression", "Max ways", "Cycles/record")
	cases := []struct {
		name string
		degA float64
		kind string
	}{
		{"ER x ER", 4, "er"},
		{"Zipf x ER", 10, "zipf"},
	}
	for _, c := range cases {
		var a *graphCOO
		var err error
		if c.kind == "zipf" {
			a, err = graph.Zipf(dim, c.degA, 1.8, opt.Seed)
		} else {
			a, err = graph.ErdosRenyi(dim, c.degA, opt.Seed)
		}
		if err != nil {
			return err
		}
		b, err := graph.ErdosRenyi(dim, 4, opt.Seed+1)
		if err != nil {
			return err
		}
		cMat, st, err := spgemm.Multiply(a, b)
		if err != nil {
			return err
		}
		_, coreStats, err := spgemm.MultiplyOnCores(a, b, 16)
		if err != nil {
			return err
		}
		t.add(c.name,
			fmt.Sprintf("%d", a.NNZ()),
			fmt.Sprintf("%d", b.NNZ()),
			fmt.Sprintf("%d", cMat.NNZ()),
			fmt.Sprintf("%d", st.FLOPs),
			fmt.Sprintf("%.2fx", st.CompressionRatio),
			fmt.Sprintf("%d", st.MaxWays),
			fmt.Sprintf("%.2f", coreStats.CyclesPerRecord()))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nRow-wise Gustavson SpGEMM = per-row multi-way merge-accumulate: the step-2 network, reused.")
	return nil
}

// graphCOO aliases the matrix type for the helper above.
type graphCOO = matrix.COO
