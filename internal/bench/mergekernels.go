package bench

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/merge"
	"mwmerge/internal/prap"
	"mwmerge/internal/types"
	"mwmerge/internal/vector"
)

// RunMergeKernels compares the two intra-core merge-accumulate kernels
// — the loser tree and the diagonal-partitioned Merge Path (DESIGN.md
// §12) — on uniform and skewed intermediate-vector shapes, with bitwise
// identity of every output record enforced: a divergence is an error,
// not a table footnote. A second sweep runs the full engine datapath at
// several Workers × MergeWorkers settings and requires the dense
// result, the traffic ledger, and the run stats to be equal across
// kernels.
func RunMergeKernels(w io.Writer, opt Options) error {
	scale := opt.Scale
	if scale > 1<<17 {
		scale = 1 << 17
	}

	type workload struct {
		name string
		mk   func() (*matrix.COO, error)
	}
	bits := uint(math.Round(math.Log2(float64(scale))))
	workloads := []workload{
		{"ER-uniform-d8", func() (*matrix.COO, error) { return graph.ErdosRenyi(scale, 8, opt.Seed) }},
		{"Zipf-skew-d8", func() (*matrix.COO, error) { return graph.Zipf(scale, 8, 1.8, opt.Seed) }},
		{"RMAT-G500-d8", func() (*matrix.COO, error) { return graph.RMAT(bits, 8, graph.Graph500Params(), opt.Seed) }},
	}

	t := newTable("Workload", "Lists", "Records", "Reps", "Loser tree (ms)", "Merge path (ms)", "Speedup", "Identical")
	var skewed *matrix.COO
	for _, wl := range workloads {
		m, err := wl.mk()
		if err != nil {
			return err
		}
		if wl.name == "Zipf-skew-d8" {
			skewed = m
		}
		// ~64 stripes gives a K-way merge wide enough to exercise the
		// reduction tree; skewed graphs leave the stripe lengths wildly
		// unequal, which is the imbalance the Merge Path kernel targets.
		lists, err := stripeLists(m, uint64(m.Rows)/64+1)
		if err != nil {
			return err
		}
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		reps := 1
		if total > 0 {
			reps = int(4_000_000 / uint64(total))
		}
		if reps < 3 {
			reps = 3
		}
		if reps > 200 {
			reps = 200
		}

		var lt merge.Workspace
		var mp merge.MergePathWorkspace
		var ltOut, mpOut []types.Record
		ltMS := timeKernel(reps, func() { ltOut = lt.MergeAccumulateInto(ltOut, lists) })
		mpMS := timeKernel(reps, func() { mpOut = mp.MergeAccumulateInto(mpOut, lists) })
		if err := recordsBitIdentical(ltOut, mpOut); err != nil {
			return fmt.Errorf("merge-kernels: %s: %w", wl.name, err)
		}
		t.add(wl.name,
			fmt.Sprintf("%d", len(lists)),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", reps),
			fmt.Sprintf("%.2f", ltMS),
			fmt.Sprintf("%.2f", mpMS),
			fmt.Sprintf("%.2fx", ltMS/mpMS),
			"yes")
	}
	if err := t.write(w); err != nil {
		return err
	}

	// Engine-level identity sweep on the skewed workload: the kernel
	// knob must be invisible in the result, the off-chip ledger, and the
	// run stats at every parallelism setting.
	fmt.Fprintln(w, "\nEngine identity sweep (Zipf-skew-d8, mergepath vs losertree):")
	x := randomDense(uint64(skewed.Cols), opt.Seed+1)
	for _, ws := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {2, 0}} {
		workers, mergeWorkers := ws[0], ws[1]
		run := func(kernel prap.MergeKernel) (got vector.Dense, traffic mem.Traffic, stats core.RunStats, err error) {
			cfg := core.Config{
				ScratchpadBytes: 64 << 10,
				ValueBytes:      8,
				MetaBytes:       8,
				Lanes:           8,
				Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: mergeWorkers, Kernel: kernel},
				HBM:             defaultHBM(),
				Workers:         workers,
			}
			eng, err := core.New(cfg)
			if err != nil {
				return nil, mem.Traffic{}, core.RunStats{}, err
			}
			y, err := eng.SpMV(skewed, x, nil)
			if err != nil {
				return nil, mem.Traffic{}, core.RunStats{}, err
			}
			return y, eng.Traffic(), eng.Stats(), nil
		}
		yLT, trLT, stLT, err := run(prap.KernelLoserTree)
		if err != nil {
			return err
		}
		yMP, trMP, stMP, err := run(prap.KernelMergePath)
		if err != nil {
			return err
		}
		for i := range yLT {
			if yLT[i] != yMP[i] {
				return fmt.Errorf("merge-kernels: workers=%d merge-workers=%d: y[%d] differs between kernels", workers, mergeWorkers, i)
			}
		}
		if trLT != trMP {
			return fmt.Errorf("merge-kernels: workers=%d merge-workers=%d: traffic ledger differs between kernels", workers, mergeWorkers)
		}
		if !reflect.DeepEqual(stLT, stMP) {
			return fmt.Errorf("merge-kernels: workers=%d merge-workers=%d: run stats differ between kernels", workers, mergeWorkers)
		}
		fmt.Fprintf(w, "  workers=%d merge-workers=%d: y, ledger, stats identical\n", workers, mergeWorkers)
	}
	return nil
}

// timeKernel measures reps sequential invocations and returns
// milliseconds per invocation.
func timeKernel(reps int, fn func()) float64 {
	fn() // warm the arenas so steady-state reuse is what gets timed
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start).Seconds() * 1e3 / float64(reps)
}

// recordsBitIdentical reports the first divergence between two record
// sequences, comparing float values by their bit patterns.
func recordsBitIdentical(a, b []types.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("outputs differ in length: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || math.Float64bits(a[i].Val) != math.Float64bits(b[i].Val) {
			return fmt.Errorf("outputs diverge at record %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}
