package bench

import (
	"bytes"
	"strings"
	"testing"
)

// These tests pin the headline invariants of the newer experiments —
// not exact numbers, but the shapes the paper's claims rest on.

func TestFig2ReportsFabricatedSpecs(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig2(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"7.5 mm2", "3.11 W", "1.4 GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 missing %q:\n%s", want, out)
		}
	}
}

func TestInterfaceSweepSaturates(t *testing.T) {
	var buf bytes.Buffer
	if err := RunInterfaceSweep(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The width-1 row must sustain ~1 record/cycle and the wide rows
	// must appear.
	if !strings.Contains(out, "1.00") {
		t.Errorf("starved row missing:\n%s", out)
	}
	if !strings.Contains(out, "Refills denied") {
		t.Errorf("denial column missing:\n%s", out)
	}
}

func TestDesignSpaceIncludesFabricatedConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := RunDesignSpace(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "16 cores, 2048 ways, 64 lanes") {
		t.Errorf("fabricated configuration not reported:\n%s", out)
	}
	if !strings.Contains(out, "feasible at") {
		t.Errorf("fabricated configuration not feasible:\n%s", out)
	}
}

func TestAblationITSShowsSpeedupAndGantt(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAblationITS(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "ITS step2 fabric") {
		t.Errorf("ITS ablation incomplete:\n%s", out)
	}
	// Every speedup cell must exceed 1x.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "x ") && strings.Contains(line, "0.") && strings.HasPrefix(line, "0") {
			t.Errorf("suspicious speedup line: %q", line)
		}
	}
}

func TestRowBufferExperimentShowsAsymmetry(t *testing.T) {
	var buf bytes.Buffer
	if err := RunRowBuffer(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x gathers") || !strings.Contains(out, "row hits") {
		t.Errorf("row-buffer experiment incomplete:\n%s", out)
	}
}

func TestMCScalingReportsQ4For512(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMCScaling(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	found := false
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 3 && f[0] == "512" {
			found = true
			if f[1] != "16" || f[2] != "4" {
				t.Errorf("512 GB/s row: %q (want 16 MCs, q=4)", line)
			}
		}
	}
	if !found {
		t.Errorf("512 GB/s row missing:\n%s", out)
	}
}

func TestHostBaselineRuns(t *testing.T) {
	var buf bytes.Buffer
	opt := smallOptions()
	opt.Scale = 1 << 12 // keep the measurement fast in CI
	if err := RunHostBaseline(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Host GTEPS") {
		t.Errorf("host baseline incomplete:\n%s", buf.String())
	}
}
