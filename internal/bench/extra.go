package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/merge"
	"mwmerge/internal/perfmodel"
	"mwmerge/internal/prap"
	"mwmerge/internal/sim"
	"mwmerge/internal/vldi"
)

// noTrafficYet seeds traffic minimum searches; no real run can reach it
// (and naming it keeps the all-ones bit pattern out of raw literals,
// which spmvlint reserves for the merge network's padding sentinel).
const noTrafficYet = ^uint64(0)

// RunAblationITS exercises the cycle-level simulator on an iterative
// workload and reports the measured ITS-vs-TS schedule speedup (§5.2,
// Fig. 15) plus the eliminated transition traffic.
func RunAblationITS(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<15 {
		dim = 1 << 15
	}
	t := newTable("Avg degree", "Iterations", "TS cycles", "ITS cycles", "Speedup", "Transitions saved (cycles)")
	for _, deg := range []float64{1.5, 3, 8} {
		a, err := graph.ErdosRenyi(dim, deg, opt.Seed)
		if err != nil {
			return err
		}
		machine, err := sim.New(sim.DefaultConfig())
		if err != nil {
			return err
		}
		x := randomDense(a.Cols, opt.Seed+1)
		const iters = 4
		_, rep, err := machine.RunIterative(a, x, iters, 0.85)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%.1f", deg),
			fmt.Sprintf("%d", iters),
			fmt.Sprintf("%d", rep.SequentialCycles),
			fmt.Sprintf("%d", rep.OverlappedCycles),
			fmt.Sprintf("%.2fx", rep.Speedup()),
			fmt.Sprintf("%d", uint64(iters-1)*rep.TransitionCycles))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nITS hides the shorter phase behind the longer one and removes the y->x DRAM round trip (Fig. 15).")

	// Render one schedule pair as a Gantt chart (deg-3 case).
	a, err := graph.ErdosRenyi(dim, 3, opt.Seed)
	if err != nil {
		return err
	}
	machine, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}
	_, rep, err := machine.RunIterative(a, randomDense(a.Cols, opt.Seed+1), 4, 0.85)
	if err != nil {
		return err
	}
	tsTL, itsTL, err := sim.Timeline(rep)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nSchedules (1=step1, 2=step2, x=transition):")
	if err := tsTL.Gantt(w, 72); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return itsTL.Gantt(w, 72)
}

// RunAblationVLDIMeasured sweeps VLDI block widths on a materialized
// graph through the real engine, reporting measured meta compression —
// the functional counterpart of Fig. 13's analytic optimum.
func RunAblationVLDIMeasured(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<16 {
		dim = 1 << 16
	}
	a, err := graph.ErdosRenyi(dim, 3, opt.Seed)
	if err != nil {
		return err
	}
	x := randomDense(a.Cols, opt.Seed+2)
	t := newTable("Block bits", "Vector meta vs raw", "Matrix meta vs raw", "Total traffic (MB)")
	bestBlock, bestTraffic := 0, noTrafficYet
	for _, b := range []int{2, 3, 4, 6, 8, 12, 16} {
		codec, err := vldi.NewCodec(b)
		if err != nil {
			return err
		}
		cfg := core.Config{
			ScratchpadBytes: 8 << 10, ValueBytes: 8, MetaBytes: 8, Lanes: 8,
			Merge:       prap.Config{Q: 2, Ways: 128, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers},
			HBM:         defaultHBM(),
			VectorCodec: codec,
			MatrixCodec: codec,
			Recorder:    opt.Recorder,
		}
		eng, err := core.New(cfg)
		if err != nil {
			return err
		}
		if _, err := eng.SpMV(a, x, nil); err != nil {
			return err
		}
		st := eng.Stats()
		tr := eng.Traffic().Total()
		if tr < bestTraffic {
			bestBlock, bestTraffic = b, tr
		}
		t.add(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f%%", 100*float64(st.CompressedVecBytes)/float64(st.UncompressedVecBytes)),
			fmt.Sprintf("%.1f%%", 100*float64(st.CompressedMatBytes)/float64(st.UncompressedMatBytes)),
			fmt.Sprintf("%.2f", float64(tr)/1e6))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nMeasured optimum on this graph: %d-bit blocks (%.2f MB total traffic).\n",
		bestBlock, float64(bestTraffic)/1e6)
	return nil
}

// RunOnChipSweep reproduces the §6 scaling argument: doubling the source
// vector buffer doubles the maximum dimension (8 MiB → 4B nodes TS,
// 16 MiB → 8B), and the same lever governs the FPGA points.
func RunOnChipSweep(w io.Writer, opt Options) error {
	t := newTable("Vector buffer (MiB)", "TS max nodes (B)", "ITS max nodes (B)", "On-chip total (MiB)")
	for _, mib := range []uint64{4, 8, 16, 32} {
		ts := perfmodel.ASICDesign(perfmodel.TS)
		ts.VectorBufBytes = mib << 20
		its := perfmodel.ASICDesign(perfmodel.ITS)
		its.VectorBufBytes = mib << 20
		t.add(fmt.Sprintf("%d", mib),
			fmt.Sprintf("%.1f", float64(ts.MaxNodes())/1e9),
			fmt.Sprintf("%.1f", float64(its.MaxNodes())/1e9),
			fmt.Sprintf("%.1f", float64(ts.OnChip().Total())/float64(1<<20)))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nCapacity scales linearly with the vector buffer (§6): 16 MiB reaches 8B nodes.")

	// The merge-network side of the same trade-off: FIFO SRAM packing
	// vs registers across tree widths.
	cost := merge.DefaultFIFOCostModel()
	t2 := newTable("Merge ways K", "Register FIFOs (MGE)", "SRAM-packed (MGE)", "SRAM advantage")
	for _, k := range []int{32, 256, 2048} {
		reg := cost.RegisterFIFOCost(k, 4, 16) / 1e6
		sram := cost.SRAMFIFOCost(k, 4, 16) / 1e6
		t2.add(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", reg),
			fmt.Sprintf("%.2f", sram),
			fmt.Sprintf("%.1fx", cost.SRAMAdvantage(k, 4, 16)))
	}
	fmt.Fprintln(w)
	return t2.write(w)
}
