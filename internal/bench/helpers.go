package bench

import (
	"math/rand"

	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/types"
	"mwmerge/internal/vector"
	"mwmerge/internal/vldi"
)

// collectStripeDeltas partitions m into stripes of the given width and
// returns the concatenated delta-index streams of the resulting
// intermediate-vector row patterns (the quantity VLDI compresses).
func collectStripeDeltas(m *matrix.COO, segWidth uint64) ([]uint64, error) {
	stripes, err := matrix.Partition1D(m, segWidth)
	if err != nil {
		return nil, err
	}
	var all []uint64
	for _, s := range stripes {
		var keys []uint64
		var prev uint64
		have := false
		for _, e := range s.Entries {
			if !have || e.Row != prev {
				keys = append(keys, e.Row)
				prev = e.Row
				have = true
			}
		}
		deltas, err := vldi.DeltasFromKeys(keys)
		if err != nil {
			return nil, err
		}
		all = append(all, deltas...)
	}
	return all, nil
}

// defaultHBM returns the shared memory model for functional engines.
func defaultHBM() mem.HBMConfig { return mem.DefaultHBM() }

// newRNG returns a seeded RNG.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// stripeLists converts a matrix into per-stripe sorted record lists, the
// intermediate-vector shape step 2 consumes (values are the raw entry
// values; good enough for merge-datapath ablations).
func stripeLists(m *matrix.COO, segWidth uint64) ([][]types.Record, error) {
	stripes, err := matrix.Partition1D(m, segWidth)
	if err != nil {
		return nil, err
	}
	lists := make([][]types.Record, len(stripes))
	for k, s := range stripes {
		var recs []types.Record
		for _, e := range s.Entries {
			if n := len(recs); n > 0 && recs[n-1].Key == e.Row {
				recs[n-1].Val += e.Val
				continue
			}
			recs = append(recs, types.Record{Key: e.Row, Val: e.Val})
		}
		lists[k] = recs
	}
	return lists, nil
}

// randomDense returns a reproducible random dense vector.
func randomDense(n uint64, seed int64) vector.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := vector.NewDense(int(n))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}
