package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/prap"
	"mwmerge/internal/report"
	"mwmerge/internal/vector"
	"mwmerge/internal/vldi"
)

// blockKs are the batch widths the block-spmv experiment sweeps.
var blockKs = [...]int{1, 2, 4, 8}

// RunBlockSpMV measures the multi-vector amortization of block SpMV
// (DESIGN.md §11): SpMVBlock plans stripes once and streams the matrix —
// stripe values, (VLDI-compressed) meta-data, and the detector meta pass —
// once per batch, while vector-dependent traffic (x segments, v_k round
// trips, y writes) scales with the number of right-hand sides k. The
// experiment sweeps k over blockKs and, besides printing the amortization
// curve, enforces the datapath invariants on every point:
//
//   - bit-identity: every block column equals the sequential SpMV of the
//     same right-hand side on a fresh engine;
//   - ledger equality: block ledger == k x sequential ledger minus
//     (k-1) x the single-run matrix share (Traffic.MatrixBytes and the
//     Mat{Compressed,Uncompressed}Bytes footprints);
//   - delta split: the per-request Deltas sum to the whole batch movement.
func RunBlockSpMV(w io.Writer, opt Options) error {
	scale := opt.Scale
	if scale > 1<<14 {
		scale = 1 << 14
	}
	codec, err := vldi.NewCodec(8)
	if err != nil {
		return err
	}
	mkEngine := func() (*core.Engine, error) {
		return core.New(core.Config{
			ScratchpadBytes: 16 << 10,
			ValueBytes:      8,
			MetaBytes:       8,
			Lanes:           8,
			Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers},
			HBM:             defaultHBM(),
			VectorCodec:     codec,
			MatrixCodec:     codec,
			Recorder:        opt.Recorder,
		})
	}
	a, err := graph.ErdosRenyi(scale, 6, opt.Seed)
	if err != nil {
		return err
	}

	t := newTable("k", "Block total (MB)", "k x seq (MB)", "Saved (MB)", "Matrix amortized", "Bytes/RHS (MB)")
	var matrixShare uint64
	for _, k := range blockKs {
		xs := make([]vector.Dense, k)
		for i := range xs {
			xs[i] = randomDense(a.Cols, opt.Seed+int64(i)+1)
		}

		// Sequential reference: k standalone SpMV calls on one fresh
		// engine. The first run's delta is the single-run ledger; every
		// run charges the identical matrix share again.
		seqEng, err := mkEngine()
		if err != nil {
			return err
		}
		ys := make([]vector.Dense, k)
		for i, x := range xs {
			if ys[i], err = seqEng.SpMV(a, x, nil); err != nil {
				return err
			}
		}
		seqTotal := seqEng.Counters()
		var single report.Counters
		{
			e, err := mkEngine()
			if err != nil {
				return err
			}
			if _, err := e.SpMV(a, xs[0], nil); err != nil {
				return err
			}
			single = e.Counters()
		}
		matrixShare = single.Traffic.MatrixBytes

		blkEng, err := mkEngine()
		if err != nil {
			return err
		}
		res, err := blkEng.SpMVBlock(a, xs, nil)
		if err != nil {
			return err
		}
		for i := range ys {
			if d := res.Ys[i].MaxAbsDiff(ys[i]); d != 0 {
				return fmt.Errorf("bench: block column %d of k=%d differs from sequential SpMV by %g", i, k, d)
			}
		}
		blkTotal := blkEng.Counters()

		var split report.Counters
		for _, d := range res.Deltas {
			split = split.Add(d)
		}
		if split != blkTotal {
			return fmt.Errorf("bench: k=%d per-request deltas do not sum to the batch ledger", k)
		}

		want := seqTotal
		want.Traffic.MatrixBytes -= uint64(k-1) * single.Traffic.MatrixBytes
		want.MatCompressedBytes -= uint64(k-1) * single.MatCompressedBytes
		want.MatUncompressedBytes -= uint64(k-1) * single.MatUncompressedBytes
		if blkTotal != want {
			return fmt.Errorf("bench: k=%d block ledger violates the once-per-batch rule:\n got  %+v\n want %+v", k, blkTotal, want)
		}

		blk := blkTotal.Traffic.Total()
		seq := seqTotal.Traffic.Total()
		t.add(fmt.Sprintf("%d", k),
			fmtMB(blk), fmtMB(seq), fmtMB(seq-blk),
			fmt.Sprintf("%dx -> 1x", k),
			fmtMB(blk/uint64(k)))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d nodes, degree 6, VLDI-8 on both streams; matrix share %s/run.\n", scale, fmtMB(matrixShare))
	fmt.Fprintf(w, "Every point verified: columns bit-identical to sequential SpMV; block ledger == k x sequential - (k-1) x matrix share; per-request deltas sum to the batch.\n")
	return nil
}

// fmtMB renders a byte count in MB with two decimals.
func fmtMB(b uint64) string { return fmt.Sprintf("%.2f", float64(b)/1e6) }
