package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/prap"
	"mwmerge/internal/vldi"
)

// RunFunctional executes the real Two-Step datapath (and its VLDI
// variant) on scaled-down instances of representative datasets and checks
// the result against the dense reference — the end-to-end validation the
// analytic figures rest on.
func RunFunctional(w io.Writer, opt Options) error {
	scale := opt.Scale
	if scale > 1<<17 {
		scale = 1 << 17
	}
	codec, err := vldi.NewCodec(8)
	if err != nil {
		return err
	}
	mkEngine := func(withVLDI bool) (*core.Engine, error) {
		cfg := core.Config{
			ScratchpadBytes: 64 << 10, // 8K-element segments at 8B
			ValueBytes:      8,
			MetaBytes:       8,
			Lanes:           8,
			Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers, Kernel: prap.MergeKernel(opt.MergeKernel), Drain: prap.DrainMode(opt.Drain)},
			HBM:             defaultHBM(),
			Recorder:        opt.Recorder,
		}
		if withVLDI {
			cfg.VectorCodec = codec
			cfg.MatrixCodec = codec
		}
		return core.New(cfg)
	}

	t := newTable("Dataset", "Nodes", "Edges", "Max |err|", "Traffic (MB)", "VLDI traffic (MB)", "Meta saved")
	for _, id := range []string{"FR", "TW", "Sy-1B", "road_central", "RMAT"} {
		d, err := graph.Lookup(id)
		if err != nil {
			return err
		}
		m, err := d.Instantiate(scale, opt.Seed)
		if err != nil {
			return err
		}
		x := randomDense(m.Cols, opt.Seed+1)

		eng, err := mkEngine(false)
		if err != nil {
			return err
		}
		got, err := eng.SpMV(m, x, nil)
		if err != nil {
			return err
		}
		want, err := core.ReferenceSpMV(m, x, nil)
		if err != nil {
			return err
		}
		diff := got.MaxAbsDiff(want)

		engVC, err := mkEngine(true)
		if err != nil {
			return err
		}
		gotVC, err := engVC.SpMV(m, x, nil)
		if err != nil {
			return err
		}
		if d := gotVC.MaxAbsDiff(want); d > diff {
			diff = d
		}
		st := engVC.Stats()
		saved := "-"
		if st.UncompressedVecBytes > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(st.CompressedVecBytes)/float64(st.UncompressedVecBytes)))
		}
		t.add(id,
			fmt.Sprintf("%d", m.Rows),
			fmt.Sprintf("%d", m.NNZ()),
			fmt.Sprintf("%.2g", diff),
			fmt.Sprintf("%.2f", float64(eng.Traffic().Total())/1e6),
			fmt.Sprintf("%.2f", float64(engVC.Traffic().Total())/1e6),
			saved)
	}
	return t.write(w)
}
