package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func smallOptions() Options { return Options{Scale: 1 << 13, Seed: 1} }

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"fig4", "fig13", "fig14",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
	}
	have := map[string]bool{}
	for _, e := range Registry() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig17")
	if err != nil || e.ID != "fig17" {
		t.Fatalf("Lookup(fig17) = %v, %v", e, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	opt := smallOptions()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opt); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig4(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "Cache line wastage") {
		t.Errorf("fig4 output missing rows:\n%s", out)
	}
}

func TestFig13OptimaOrdering(t *testing.T) {
	// The 5MB (narrow stripes) optimum must exceed the 35MB optimum —
	// the paper's 8-bit vs 4-bit result.
	var buf bytes.Buffer
	if err := RunFig13(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var blocks []int
	for _, line := range strings.Split(out, "\n") {
		var b, s int
		var bits float64
		if n, _ := fmtSscanf(line, "Optimal VLDI block = %d bits, string = %d bits (expected %f bits/delta)", &b, &s, &bits); n == 3 {
			blocks = append(blocks, b)
		}
	}
	if len(blocks) != 2 {
		t.Fatalf("found %d optima in output:\n%s", len(blocks), out)
	}
	if blocks[0] <= blocks[1] {
		t.Errorf("5MB optimum %d not above 35MB optimum %d", blocks[0], blocks[1])
	}
}

func TestTable2OutputContainsAllPoints(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"TS_ASIC", "ITS_ASIC", "ITS_VC_ASIC", "TS_FPGA1", "ITS_FPGA1", "TS_FPGA2", "ITS_FPGA2"} {
		if !strings.Contains(out, id) {
			t.Errorf("table 2 missing %s", id)
		}
	}
}

func TestFig17ShowsImprovement(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig17(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Improvement over published benchmarks") {
		t.Errorf("fig17 missing improvement summary:\n%s", buf.String())
	}
}

func TestFig21CapacityDashes(t *testing.T) {
	// Billion-node Sy graphs must show '-' for the COTS platforms but
	// values for the ASIC (the paper's central capacity story).
	var buf bytes.Buffer
	if err := RunFig21(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Sy-1B") {
			found = true
			if !strings.Contains(line, "-") {
				t.Errorf("Sy-1B row should dash out COTS: %q", line)
			}
		}
	}
	if !found {
		t.Error("Sy-1B row missing from fig21")
	}
}

func TestFunctionalValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFunctional(&buf, smallOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FR") || !strings.Contains(out, "Sy-1B") {
		t.Errorf("functional output incomplete:\n%s", out)
	}
}

// fmtSscanf adapts fmt.Sscanf for the loop above.
func fmtSscanf(s, format string, args ...interface{}) (int, error) {
	return fmt.Sscanf(s, format, args...)
}
