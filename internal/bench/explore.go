package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/perfmodel"
)

// RunDesignSpace sweeps (merge cores, tree ways, step-1 lanes) under the
// fabricated chip's 7.5 mm² / 11 MiB budget on the billion-node deg-3
// workload, showing where the published configuration sits in its own
// design space.
func RunDesignSpace(w io.Writer, opt Options) error {
	workload := perfmodel.GraphStats{Nodes: 1e9, Edges: 3e9}
	cands, err := perfmodel.Explore(workload, perfmodel.ASICBudget(), perfmodel.Area16nm())
	if err != nil {
		return err
	}
	feasible, infeasible := 0, 0
	for _, c := range cands {
		if c.Feasible {
			feasible++
		} else {
			infeasible++
		}
	}
	fmt.Fprintf(w, "Workload: 1B nodes, 3B edges. Budget: 7.5 mm2 core, 11 MiB on-chip, >=1B-node capacity.\n")
	fmt.Fprintf(w, "Swept %d configurations: %d feasible, %d rejected.\n\n", len(cands), feasible, infeasible)

	t := newTable("Rank", "Config (p-K-P)", "GTEPS", "Area (mm2)", "On-chip (MiB)", "Max nodes (B)")
	shown := 0
	for _, c := range cands {
		if !c.Feasible || shown >= 8 {
			break
		}
		shown++
		t.add(fmt.Sprintf("%d", shown),
			c.Point.ID,
			fmt.Sprintf("%.1f", c.GTEPS),
			fmt.Sprintf("%.2f", c.AreaMM2),
			fmt.Sprintf("%.1f", float64(c.OnChip)/float64(1<<20)),
			fmt.Sprintf("%.1f", float64(c.MaxNodes)/1e9))
	}
	if err := t.write(w); err != nil {
		return err
	}
	for _, c := range cands {
		if c.Point.MergeCores == 16 && c.Point.Ways == 2048 && c.Point.Lanes == 64 {
			status := "infeasible: " + c.Reason
			if c.Feasible {
				status = fmt.Sprintf("feasible at %.1f GTEPS", c.GTEPS)
			}
			fmt.Fprintf(w, "\nThe fabricated configuration (16 cores, 2048 ways, 64 lanes) is %s.\n", status)
			break
		}
	}
	return nil
}
