package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/perfmodel"
)

// RunMCScaling answers the §2.2 sizing question: how many parallel merge
// cores (radix width q) does PRaP need to saturate a given HBM
// generation? Prior multi-way merge hardware peaked at 3-10 GB/s while 3D
// stacks deliver 250-1000 GB/s — the order-of-magnitude gap PRaP closes.
func RunMCScaling(w io.Writer, opt Options) error {
	d := perfmodel.ASICDesign(perfmodel.TS)
	single := d.SingleMCThroughput()
	fmt.Fprintf(w, "Single %d-way MC at %.1f GHz: %.0f GB/s (prior art: 3-10 GB/s)\n\n",
		d.Ways, d.FreqHz/1e9, single/1e9)

	// "Saturating" means matching the sustained streaming bandwidth,
	// ~84% of peak (432 of 512 GB/s on the ASIC memory system).
	const sustainedFrac = 0.84
	t := newTable("HBM stream BW (GB/s)", "MCs needed", "q (radix bits)", "Aggregate (GB/s)", "Prefetch buffer (MiB)")
	for _, bwGB := range []float64{128, 256, 512, 1000} {
		bw := bwGB * 1e9 * sustainedFrac
		p := 1
		q := 0
		for float64(p)*single*d.MergeEff < bw {
			p <<= 1
			q++
		}
		prefetch := float64(d.Ways) * float64(d.HBM.PageBytes) / float64(1<<20)
		t.add(fmt.Sprintf("%.0f", bwGB),
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%.0f", float64(p)*single*d.MergeEff/1e9),
			fmt.Sprintf("%.1f", prefetch))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nq = 4 (16 cores) saturates the 512 GB/s HBM subsystem (§4.2.2), and the prefetch")
	fmt.Fprintln(w, "buffer column is constant — parallelism is free of on-chip memory cost under PRaP.")
	return nil
}
