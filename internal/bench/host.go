package bench

import (
	"fmt"
	"io"
	"time"

	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/perfmodel"
	"mwmerge/internal/stats"
)

// RunHostBaseline measures the machine running this reproduction: actual
// wall-clock GTEPS of a plain CSR SpMV loop on scaled instances, next to
// the modeled COTS and accelerator numbers. It grounds the analytic
// models — a laptop-class host should land in the same fraction-of-a-
// GTEPS band as the paper's Xeon measurements.
func RunHostBaseline(w io.Writer, opt Options) error {
	t := newTable("Graph", "Nodes", "Edges", "Host GTEPS (measured)", "Xeon model", "TS_ASIC model", "Degree tail alpha")
	for _, spec := range []struct {
		id  string
		cap uint64
	}{
		{"Sy-60M", 1 << 18},
		{"TW", 1 << 17},
		{"road_central", 1 << 18},
	} {
		d, err := graph.Lookup(spec.id)
		if err != nil {
			return err
		}
		scale := spec.cap
		if opt.Scale < scale {
			scale = opt.Scale
		}
		a, err := d.Instantiate(scale, opt.Seed)
		if err != nil {
			return err
		}
		csr := matrix.ToCSR(a)
		x := randomDense(a.Cols, opt.Seed+3)
		y := make([]float64, a.Rows)

		// Warm + time a few CSR SpMV passes.
		const passes = 5
		start := time.Now()
		for p := 0; p < passes; p++ {
			for r := uint64(0); r < csr.Rows; r++ {
				cols, vals := csr.Row(r)
				acc := 0.0
				for i, c := range cols {
					acc += vals[i] * x[c]
				}
				y[r] += acc
			}
		}
		elapsed := time.Since(start).Seconds()
		hostGTEPS := float64(passes) * float64(a.NNZ()) / elapsed / 1e9

		g := perfmodel.GraphStats{Nodes: d.Nodes(), Edges: d.Edges()}
		xeon := "-"
		if r, ok := perfmodel.XeonE5().EvaluateCOTS(g, 8, 8); ok {
			xeon = fmt.Sprintf("%.2f", r.GTEPS)
		}
		asic := "-"
		if r, ok := perfmodel.ASICDesign(perfmodel.TS).EvaluateOrCap(g); ok {
			asic = fmt.Sprintf("%.1f", r.GTEPS)
		}
		alpha := stats.HillEstimator(a.RowDegrees(), int(a.Rows/20))
		t.add(spec.id,
			fmt.Sprintf("%d", a.Rows),
			fmt.Sprintf("%d", a.NNZ()),
			fmt.Sprintf("%.3f", hostGTEPS),
			xeon, asic,
			fmt.Sprintf("%.2f", alpha))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe host lands in the same sub-GTEPS band as the paper's COTS rows; the modeled")
	fmt.Fprintln(w, "accelerator sits one to two orders of magnitude above — the Fig. 21 gap, grounded.")
	return nil
}
