package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/baseline"
	"mwmerge/internal/energy"
	"mwmerge/internal/graph"
	"mwmerge/internal/perfmodel"
)

// statsOf converts a dataset registry entry to model input.
func statsOf(d graph.Dataset) perfmodel.GraphStats {
	return perfmodel.GraphStats{Nodes: d.Nodes(), Edges: d.Edges()}
}

// fmtRes formats a GTEPS cell, blank when the platform cannot run the
// graph (as the paper's figures leave bars out).
func fmtRes(r perfmodel.Result, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", r.GTEPS)
}

func fmtNJ(r perfmodel.Result, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2f", r.NJPerEdge)
}

// runGTEPSFigure prints one GTEPS comparison figure: published benchmark
// bars plus the given design points on the given datasets.
func runGTEPSFigure(w io.Writer, sets []graph.Dataset, points []perfmodel.DesignPoint) error {
	header := []string{"Graph", "Benchmark", "Bench GTEPS"}
	for _, p := range points {
		header = append(header, p.ID)
	}
	t := newTable(header...)
	var best, bench []float64
	for _, d := range sets {
		g := statsOf(d)
		pub := baseline.PublishedFor(d.ID)
		pubName, pubVal := "-", "-"
		if len(pub) > 0 {
			pubName = pub[0].Benchmark
			pubVal = fmt.Sprintf("%.2f", pub[0].GTEPS)
		}
		row := []string{d.ID, pubName, pubVal}
		var rowBest float64
		for _, p := range points {
			r, ok := p.EvaluateOrCap(g)
			row = append(row, fmtRes(r, ok))
			if ok && r.GTEPS > rowBest {
				rowBest = r.GTEPS
			}
		}
		t.add(row...)
		if len(pub) > 0 && rowBest > 0 {
			best = append(best, rowBest)
			bench = append(bench, pub[0].GTEPS)
		}
	}
	if err := t.write(w); err != nil {
		return err
	}
	if len(best) > 0 {
		lo, hi := best[0]/bench[0], best[0]/bench[0]
		for i := range best {
			r := best[i] / bench[i]
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		fmt.Fprintf(w, "\nImprovement over published benchmarks: %.0fx - %.0fx\n", lo, hi)
	}
	return nil
}

// RunFig17 reproduces Figure 17: GTEPS of the three ASIC variants against
// the custom hardware benchmarks on the Table 4 graphs (paper: 5x-90x).
func RunFig17(w io.Writer, opt Options) error {
	return runGTEPSFigure(w, graph.Table4, []perfmodel.DesignPoint{
		perfmodel.ASICDesign(perfmodel.TS),
		perfmodel.ASICDesign(perfmodel.ITS),
		perfmodel.ASICDesign(perfmodel.ITSVC),
	})
}

// RunFig18 reproduces Figure 18: GTEPS of the four FPGA variants against
// the custom hardware benchmarks (paper: 3x-60x).
func RunFig18(w io.Writer, opt Options) error {
	return runGTEPSFigure(w, graph.Table4, []perfmodel.DesignPoint{
		perfmodel.FPGA1Design(perfmodel.TS),
		perfmodel.FPGA1Design(perfmodel.ITS),
		perfmodel.FPGA2Design(perfmodel.TS),
		perfmodel.FPGA2Design(perfmodel.ITS),
	})
}

// runGTEPSEnergyFigure prints paired GTEPS and nJ/edge panels, the (a)/(b)
// layout of Figures 19-22.
func runGTEPSEnergyFigure(w io.Writer, sets []graph.Dataset, points []perfmodel.DesignPoint, cots []perfmodel.CPUModelConfig) error {
	header := []string{"Graph"}
	for _, c := range cots {
		header = append(header, c.Name)
	}
	for _, p := range points {
		header = append(header, p.ID)
	}
	gt := newTable(header...)
	et := newTable(header...)
	for _, d := range sets {
		g := statsOf(d)
		grow := []string{d.ID}
		erow := []string{d.ID}
		for _, c := range cots {
			r, ok := c.EvaluateCOTS(g, 8, 8)
			if !ok {
				grow = append(grow, "-")
				erow = append(erow, "-")
				continue
			}
			grow = append(grow, fmt.Sprintf("%.3f", r.GTEPS))
			erow = append(erow, fmt.Sprintf("%.1f", r.NJPerEdge))
		}
		for _, p := range points {
			r, ok := p.EvaluateOrCap(g)
			grow = append(grow, fmtRes(r, ok))
			erow = append(erow, fmtNJ(r, ok))
		}
		gt.add(grow...)
		et.add(erow...)
	}
	fmt.Fprintln(w, "(a) GTEPS")
	if err := gt.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) Energy per edge traversal (nJ)")
	return et.write(w)
}

// RunFig19 reproduces Figure 19: ASIC vs the 8-node GPU cluster on the
// Table 5 graphs (paper: 22x-100x GTEPS, 150x-1000x energy).
func RunFig19(w io.Writer, opt Options) error {
	points := []perfmodel.DesignPoint{
		perfmodel.ASICDesign(perfmodel.TS),
		perfmodel.ASICDesign(perfmodel.ITS),
		perfmodel.ASICDesign(perfmodel.ITSVC),
	}
	if err := runGTEPSEnergyFigure(w, graph.Table5, points, []perfmodel.CPUModelConfig{perfmodel.GPUM2050()}); err != nil {
		return err
	}
	// Published GPU reference values for context.
	fmt.Fprintln(w, "\nPublished BM1_GPU series (digitized):")
	for _, p := range baseline.GPUBenchmark {
		fmt.Fprintf(w, "  %-8s %.2f GTEPS  %.0f nJ/edge\n", p.GraphID, p.GTEPS, p.NJPerEdge)
	}
	return nil
}

// RunFig20 reproduces Figure 20: FPGA vs the GPU cluster (paper: 3x-70x
// GTEPS, 13x-400x energy).
func RunFig20(w io.Writer, opt Options) error {
	points := []perfmodel.DesignPoint{
		perfmodel.FPGA1Design(perfmodel.TS),
		perfmodel.FPGA1Design(perfmodel.ITS),
		perfmodel.FPGA2Design(perfmodel.TS),
		perfmodel.FPGA2Design(perfmodel.ITS),
	}
	return runGTEPSEnergyFigure(w, graph.Table5, points, []perfmodel.CPUModelConfig{perfmodel.GPUM2050()})
}

// RunFig21 reproduces Figure 21: ASIC vs Intel MKL on Xeon E5 and Xeon Phi
// on the Table 6 graphs, in increasing dimension order, including the
// billion-node synthetic graphs only the accelerator can run (paper:
// 16x-800x GTEPS, 170x-1500x energy).
func RunFig21(w io.Writer, opt Options) error {
	points := []perfmodel.DesignPoint{
		perfmodel.ASICDesign(perfmodel.TS),
		perfmodel.ASICDesign(perfmodel.ITS),
		perfmodel.ASICDesign(perfmodel.ITSVC),
	}
	return runGTEPSEnergyFigure(w, graph.Table6, points,
		[]perfmodel.CPUModelConfig{perfmodel.XeonE5(), perfmodel.XeonPhi5110()})
}

// RunFig22 reproduces Figure 22: FPGA vs CPU and co-processor (paper:
// 10x-260x GTEPS, 20x-300x energy).
func RunFig22(w io.Writer, opt Options) error {
	points := []perfmodel.DesignPoint{
		perfmodel.FPGA1Design(perfmodel.TS),
		perfmodel.FPGA1Design(perfmodel.ITS),
		perfmodel.FPGA2Design(perfmodel.TS),
		perfmodel.FPGA2Design(perfmodel.ITS),
	}
	return runGTEPSEnergyFigure(w, graph.Table6, points,
		[]perfmodel.CPUModelConfig{perfmodel.XeonE5(), perfmodel.XeonPhi5110()})
}

// njFromPower is kept for figures that report platform-power-derived
// energy.
var _ = energy.NJPerEdgeFromPower
