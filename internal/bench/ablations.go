package bench

import (
	"fmt"
	"io"
	"sort"

	"mwmerge/internal/graph"
	"mwmerge/internal/hdn"
	"mwmerge/internal/mem"
	"mwmerge/internal/merge"
	"mwmerge/internal/prap"
	"mwmerge/internal/types"
)

// RunAblationPrefetch reproduces the §4.1 argument: on-chip prefetch
// buffer demand of partition-based parallelization (m·K·dpage) vs PRaP
// (K·dpage) across parallelism degrees.
func RunAblationPrefetch(w io.Writer, opt Options) error {
	hbm := mem.DefaultHBM()
	const k = 1024
	t := newTable("Parallel units", "Partitioning (MB)", "PRaP (MB)")
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		part := float64(hbm.PartitionedPrefetchBytes(m, k)) / 1e6
		pr := float64(hbm.PrefetchBufferBytes(k)) / 1e6
		t.add(fmt.Sprintf("%d", m), fmt.Sprintf("%.1f", part), fmt.Sprintf("%.1f", pr))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPRaP holds the buffer constant at K x dpage = %.1f MB while partitioning grows linearly.\n",
		float64(hbm.PrefetchBufferBytes(k))/1e6)
	return nil
}

// RunAblationMergeWays runs the cycle-approximate merge core across tree
// widths and reports cycles per record, SRAM footprint and pipeline depth
// (the §3.2 trade-off between ways and clock-rate-normalized throughput).
func RunAblationMergeWays(w io.Writer, opt Options) error {
	t := newTable("Ways K", "Depth", "Cycles/record", "FIFO SRAM (KB)")
	const recordsPerList = 512
	for _, ways := range []int{4, 8, 16, 32, 64, 128} {
		lists := make([][]types.Record, ways)
		rng := newRNG(opt.Seed)
		for i := range lists {
			keys := make([]uint64, recordsPerList)
			for j := range keys {
				keys[j] = rng.Uint64() % 1_000_000
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			recs := make([]types.Record, len(keys))
			for j, k := range keys {
				recs[j] = types.Record{Key: k, Val: 1}
			}
			lists[i] = recs
		}
		sources := make([]merge.Source, ways)
		for i, l := range lists {
			sources[i] = merge.NewSliceSource(l)
		}
		cfg := merge.CoreConfig{Ways: ways, FIFODepth: 8, RecordBytes: types.RecordBytes, FillPerCycle: 32}
		c, err := merge.NewCore(cfg, sources)
		if err != nil {
			return err
		}
		st, err := c.Run(nil)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", ways),
			fmt.Sprintf("%d", c.Depth()),
			fmt.Sprintf("%.2f", st.CyclesPerRecord()),
			fmt.Sprintf("%.1f", float64(c.BufferBytes())/1e3))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThroughput stays ~1 record/cycle regardless of K; SRAM grows linearly — the single-MC ceiling PRaP breaks.")
	return nil
}

// RunAblationPRaP sweeps the radix width q and reports the aggregate
// output width, pre-sorter cost, load imbalance before injection and
// prefetch buffer, demonstrating §4.2's scaling claim functionally.
func RunAblationPRaP(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<16 {
		dim = 1 << 16
	}
	m, err := graph.ErdosRenyi(dim, 3, opt.Seed)
	if err != nil {
		return err
	}
	// Build intermediate lists from 16 stripes.
	lists, err := stripeLists(m, dim/16+1)
	if err != nil {
		return err
	}
	t := newTable("q", "Cores p", "Output rec/cycle", "Input imbalance", "Injected", "Prefetch (KB)")
	for q := uint(0); q <= 5; q++ {
		cfg := prap.Config{Q: q, Ways: 64, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers}
		n, err := prap.New(cfg)
		if err != nil {
			return err
		}
		_, st, err := n.Merge(lists, dim, nil)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", cfg.Cores()),
			fmt.Sprintf("%d", cfg.Cores()),
			fmt.Sprintf("%.3f", st.LoadImbalance()),
			fmt.Sprintf("%d", st.Injected),
			fmt.Sprintf("%.0f", float64(cfg.PrefetchBufferBytes())/1e3))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nOutput width scales as 2^q with a constant prefetch buffer; injection hides the input imbalance.")
	return nil
}

// RunAblationHDN builds Bloom-filter HDN detectors over power-law graphs
// and reports threshold sweeps: HDN counts, filter size, analytic vs
// measured false-positive ratio, and pipeline routing splits (§5.3).
func RunAblationHDN(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<15 {
		dim = 1 << 15
	}
	m, err := graph.Zipf(dim, 16, 1.8, opt.Seed)
	if err != nil {
		return err
	}
	pipe := hdn.DefaultPipelineModel()
	t := newTable("Threshold", "HDNs", "HDN edge share", "Filter (KB)", "FPR est", "FPR measured", "Step-1 speedup")
	for _, thr := range []uint64{64, 128, 256, 512} {
		cfg := hdn.DefaultConfig()
		cfg.Threshold = thr
		det, err := hdn.Build(m, cfg)
		if err != nil {
			return err
		}
		st := det.Route(m)
		share := float64(st.HDNRecords) / float64(m.NNZ())
		cost := pipe.ModelStep1(m, det)
		t.add(fmt.Sprintf("%d", thr),
			fmt.Sprintf("%d", len(det.Exact)),
			fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%.1f", float64(det.SizeBytes())/1e3),
			fmt.Sprintf("%.4f", det.EstimatedFPR()),
			fmt.Sprintf("%.4f", det.MeasureFPR(m.Rows)),
			fmt.Sprintf("%.2fx", cost.Speedup()))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nFalse positives only misroute regular rows into the HDN pipeline — harmless (§5.3).")
	return nil
}
