package bench

import (
	"fmt"
	"io"
	"math"
	"reflect"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/mem"
	"mwmerge/internal/prap"
	"mwmerge/internal/vector"
)

// RunDrain compares the store queue's two drain strategies — the dense
// residue-class walk and the record-proportional sparse fast path
// (DESIGN.md §13) — across output fill ratios nnz/dim ∈ {0.1, 1, 8} on
// ER, Zipf, and RMAT shapes. Bitwise identity of the dense result and
// equality of the merge statistics are enforced on every row: the drain
// knob must be invisible in everything except wall-clock time. The
// hypersparse rows (nnz/dim = 0.1, dimension ≈ 10× the distinct output
// keys) are the paper's target regime, where the sparse drain's win is
// largest. A second sweep runs the full engine datapath on a hypersparse
// instance with a dirty y-in at several Workers × MergeWorkers × Kernel
// settings and requires the result, the off-chip ledger, and the run
// stats to be equal across all three drain modes.
func RunDrain(w io.Writer, opt Options) error {
	scale := opt.Scale
	if scale > 1<<17 {
		scale = 1 << 17
	}
	bits := uint(math.Round(math.Log2(float64(scale))))

	type shape struct {
		name string
		mk   func(fill float64) (*matrix.COO, error)
	}
	shapes := []shape{
		{"ER", func(f float64) (*matrix.COO, error) { return graph.ErdosRenyi(scale, f, opt.Seed) }},
		{"Zipf", func(f float64) (*matrix.COO, error) { return graph.Zipf(scale, f, 1.8, opt.Seed) }},
		{"RMAT", func(f float64) (*matrix.COO, error) { return graph.RMAT(bits, f, graph.Graph500Params(), opt.Seed) }},
	}
	fills := []float64{0.1, 1, 8}

	mkNet := func(mode prap.DrainMode) (*prap.Network, error) {
		return prap.New(prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers, Drain: mode})
	}

	t := newTable("Workload", "nnz/dim", "Out keys", "Inj ratio", "Reps", "Dense (ms)", "Sparse (ms)", "Speedup", "Identical")
	for _, sh := range shapes {
		for _, fill := range fills {
			m, err := sh.mk(fill)
			if err != nil {
				return err
			}
			lists, err := stripeLists(m, m.Rows/64+1)
			if err != nil {
				return err
			}
			dim := m.Rows
			denseNet, err := mkNet(prap.DrainDense)
			if err != nil {
				return err
			}
			sparseNet, err := mkNet(prap.DrainSparse)
			if err != nil {
				return err
			}
			yD := vector.NewDense(int(dim))
			yS := vector.NewDense(int(dim))
			// Correctness pass first: a timing loop may not mask a divergence.
			stD, err := denseNet.MergeInto(lists, dim, nil, yD, 0, nil)
			if err != nil {
				return err
			}
			stS, err := sparseNet.MergeInto(lists, dim, nil, yS, 0, nil)
			if err != nil {
				return err
			}
			for i := range yD {
				if math.Float64bits(yD[i]) != math.Float64bits(yS[i]) {
					return fmt.Errorf("drain: %s nnz/dim=%g: y[%d] differs between drains", sh.name, fill, i)
				}
			}
			if !reflect.DeepEqual(stD, stS) {
				return fmt.Errorf("drain: %s nnz/dim=%g: merge stats differ between drains", sh.name, fill)
			}

			// The dense walk's cost is O(dim) regardless of fill, so the rep
			// count scales with the dimension.
			reps := int(4_000_000 / dim)
			if reps < 3 {
				reps = 3
			}
			if reps > 100 {
				reps = 100
			}
			dMS := timeKernel(reps, func() { _, _ = denseNet.MergeInto(lists, dim, nil, yD, 0, nil) })
			sMS := timeKernel(reps, func() { _, _ = sparseNet.MergeInto(lists, dim, nil, yS, 0, nil) })
			outKeys := stD.Emitted - stD.Injected
			t.add(sh.name,
				fmt.Sprintf("%g", fill),
				fmt.Sprintf("%d", outKeys),
				fmt.Sprintf("%.3f", float64(stD.Injected)/float64(stD.Emitted)),
				fmt.Sprintf("%d", reps),
				fmt.Sprintf("%.2f", dMS),
				fmt.Sprintf("%.2f", sMS),
				fmt.Sprintf("%.2fx", dMS/sMS),
				"yes")
		}
	}
	if err := t.write(w); err != nil {
		return err
	}

	// Engine-level identity sweep: hypersparse instance, dirty y-in (no
	// -0.0, so the sparse path stays eligible), every drain mode against
	// the dense baseline across parallelism and kernel settings.
	fmt.Fprintln(w, "\nEngine identity sweep (hypersparse ER nnz/dim=0.1, dense vs sparse vs auto):")
	hs, err := graph.ErdosRenyi(scale, 0.1, opt.Seed+7)
	if err != nil {
		return err
	}
	x := randomDense(hs.Cols, opt.Seed+1)
	yIn := randomDense(hs.Rows, opt.Seed+2)
	for _, kern := range []prap.MergeKernel{prap.KernelLoserTree, prap.KernelMergePath} {
		for _, ws := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {2, 0}} {
			workers, mergeWorkers := ws[0], ws[1]
			run := func(mode prap.DrainMode) (vector.Dense, mem.Traffic, core.RunStats, error) {
				cfg := core.Config{
					ScratchpadBytes: 64 << 10,
					ValueBytes:      8,
					MetaBytes:       8,
					Lanes:           8,
					Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: mergeWorkers, Kernel: kern, Drain: mode},
					HBM:             defaultHBM(),
					Workers:         workers,
				}
				eng, err := core.New(cfg)
				if err != nil {
					return nil, mem.Traffic{}, core.RunStats{}, err
				}
				y, err := eng.SpMV(hs, x, yIn)
				if err != nil {
					return nil, mem.Traffic{}, core.RunStats{}, err
				}
				return y, eng.Traffic(), eng.Stats(), nil
			}
			yRef, trRef, stRef, err := run(prap.DrainDense)
			if err != nil {
				return err
			}
			for _, mode := range []prap.DrainMode{prap.DrainSparse, prap.DrainAuto} {
				y, tr, st, err := run(mode)
				if err != nil {
					return err
				}
				for i := range yRef {
					if math.Float64bits(yRef[i]) != math.Float64bits(y[i]) {
						return fmt.Errorf("drain: kernel=%s workers=%d merge-workers=%d: y[%d] differs, %s vs dense", kern, workers, mergeWorkers, i, mode)
					}
				}
				if trRef != tr {
					return fmt.Errorf("drain: kernel=%s workers=%d merge-workers=%d: traffic ledger differs, %s vs dense", kern, workers, mergeWorkers, mode)
				}
				if !reflect.DeepEqual(stRef, st) {
					return fmt.Errorf("drain: kernel=%s workers=%d merge-workers=%d: run stats differ, %s vs dense", kern, workers, mergeWorkers, mode)
				}
			}
			fmt.Fprintf(w, "  kernel=%-9s workers=%d merge-workers=%d: y, ledger, stats identical across drains\n", kern, workers, mergeWorkers)
		}
	}
	return nil
}
