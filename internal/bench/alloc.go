package bench

import (
	"fmt"
	"io"
	"testing"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/prap"
)

// AllocBudgetPerIteration is the documented steady-state allocation
// ceiling per Iterate iteration on a warmed engine at
// Workers=1/MergeWorkers=1 (DESIGN.md §9). The engine's scratch arenas
// keep the measured value in single digits; the ceiling leaves headroom
// for runtime noise while still catching any per-record or per-batch
// allocation regression. CI's alloc-smoke job fails the build when the
// measurement exceeds it.
const AllocBudgetPerIteration = 16

// RunAllocSteady measures the steady-state allocation rate of iterative
// SpMV: one engine is warmed until every scratch arena has grown to its
// working size, then further Iterate calls are measured with
// testing.AllocsPerRun for both schedules. The experiment errors when
// the per-iteration count exceeds AllocBudgetPerIteration, except under
// the race detector, whose instrumentation inflates allocation counts —
// there the table is still printed but the budget is not enforced.
func RunAllocSteady(w io.Writer, opt Options) error {
	const iters = 4
	scale := opt.Scale
	if scale > 1<<13 {
		scale = 1 << 13
	}
	eng, err := core.New(core.Config{
		ScratchpadBytes: 16 << 10,
		ValueBytes:      8,
		MetaBytes:       8,
		Lanes:           8,
		Workers:         1,
		Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: 1},
		HBM:             defaultHBM(),
	})
	if err != nil {
		return err
	}
	a, err := graph.ErdosRenyi(scale, 6, opt.Seed)
	if err != nil {
		return err
	}
	x0 := randomDense(a.Cols, opt.Seed+1)

	t := newTable("Schedule", "Allocs/call", "Allocs/iteration", "Budget/iteration")
	var worst float64
	for _, overlap := range []bool{false, true} {
		o := core.IterateOptions{Iterations: iters, Overlap: overlap, Damping: 0.85}
		// Warm-up grows the arenas; the measurement sees only steady state.
		if _, err := eng.Iterate(a, x0, o); err != nil {
			return err
		}
		var runErr error
		perCall := testing.AllocsPerRun(10, func() {
			if _, err := eng.Iterate(a, x0, o); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return runErr
		}
		perIter := perCall / iters
		if perIter > worst {
			worst = perIter
		}
		name := "sequential"
		if overlap {
			name = "ITS overlap"
		}
		t.add(name, fmt.Sprintf("%.1f", perCall), fmt.Sprintf("%.2f", perIter),
			fmt.Sprintf("%d", AllocBudgetPerIteration))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d nodes, %d iterations per call, Workers=1/MergeWorkers=1, engine warmed before measuring.\n", scale, iters)
	if worst > AllocBudgetPerIteration {
		if raceEnabled {
			fmt.Fprintf(w, "Budget of %d/iteration exceeded (%.2f) — not enforced under the race detector.\n",
				AllocBudgetPerIteration, worst)
			return nil
		}
		return fmt.Errorf("bench: steady-state allocations %.2f/iteration exceed the documented budget of %d",
			worst, AllocBudgetPerIteration)
	}
	fmt.Fprintf(w, "Steady state holds the documented budget of %d allocations per iteration.\n", AllocBudgetPerIteration)
	return nil
}
