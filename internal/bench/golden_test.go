package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestTable2Golden pins the exact Table 2 output — the one experiment
// whose numbers must never drift, because they are the paper's published
// design points reproduced by the calibrated models.
func TestTable2Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(&buf, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := []string{
		"TS_ASIC       4295.0         4000.0  432               432",
		"ITS_ASIC      2147.5         2000.0  729               729",
		"ITS_VC_ASIC   2147.5         2000.0  656               656",
		"TS_FPGA1      134.2          134.2   96                96",
		"ITS_FPGA1     67.1           67.1    178               178",
		"TS_FPGA2      67.1           67.1    190               190",
		"ITS_FPGA2     33.6           33.6    357               357",
		"Single 2048-way MC at 1.4 GHz: 28 GB/s (paper: 28 GB/s)",
	}
	for _, line := range want {
		if !strings.Contains(got, line) {
			t.Errorf("table 2 drifted; missing %q in:\n%s", line, got)
		}
	}
}

// TestFig4Golden pins the headline traffic numbers of Fig. 4.
func TestFig4Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig4(&buf, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, line := range []string{
		"TOTAL                234.49         115.77",
		"Cache line wastage   178.58         0.00",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("fig4 drifted; missing %q in:\n%s", line, got)
		}
	}
}
