package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/perfmodel"
)

// RunSkewModel contrasts the uniform intermediate-records estimate (used
// by the headline figures, exact for the paper's Erdős–Rényi Sy-*
// workloads) against the degree-distribution-aware estimate on the
// power-law datasets, and validates both against an exact count on a
// scaled instance. Hub rows collapse many products into few intermediate
// records, so the skew-aware model predicts less round-trip traffic for
// social graphs.
func RunSkewModel(w io.Writer, opt Options) error {
	d := perfmodel.ASICDesign(perfmodel.TS)
	seg := d.SegmentWidth()

	t := newTable("Dataset", "Kind", "Uniform est (M rec)", "Skew-aware (M rec)", "Reduction")
	for _, id := range []string{"Sy-60M", "TW", "ara-05", "wb-edu", "road_central"} {
		ds, err := graph.Lookup(id)
		if err != nil {
			return err
		}
		g := perfmodel.GraphStats{Nodes: ds.Nodes(), Edges: ds.Edges()}
		uniform := g.IntermediateRecords(seg)
		hist := graph.SyntheticDegreeHist(ds, 1<<14)
		skew := g.IntermediateRecordsFromDegrees(seg, hist)
		red := "-"
		if uniform > 0 {
			red = fmt.Sprintf("%.1f%%", 100*(1-float64(skew)/float64(uniform)))
		}
		t.add(id, ds.Kind.String(),
			fmt.Sprintf("%.1f", float64(uniform)/1e6),
			fmt.Sprintf("%.1f", float64(skew)/1e6),
			red)
	}
	if err := t.write(w); err != nil {
		return err
	}

	// Exact validation on a scaled Zipf instance.
	scale := opt.Scale
	if scale > 1<<15 {
		scale = 1 << 15
	}
	ds, _ := graph.Lookup("TW")
	m, err := ds.Instantiate(scale, opt.Seed)
	if err != nil {
		return err
	}
	segSmall := uint64(scale / 8)
	var exact uint64
	{
		stripes, err := stripeLists(m, segSmall)
		if err != nil {
			return err
		}
		for _, l := range stripes {
			exact += uint64(len(l))
		}
	}
	gSmall := perfmodel.GraphStats{Nodes: m.Rows, Edges: uint64(m.NNZ())}
	hist := make([]uint64, 1<<14)
	for _, deg := range m.RowDegrees() {
		if deg >= uint64(len(hist)) {
			deg = uint64(len(hist)) - 1
		}
		hist[deg]++
	}
	uni := gSmall.IntermediateRecords(segSmall)
	skew := gSmall.IntermediateRecordsFromDegrees(segSmall, hist)
	fmt.Fprintf(w, "\nScaled TW instance (%d nodes): exact %d records, skew-aware %d (%.1f%% err), uniform %d (%.1f%% err)\n",
		m.Rows, exact,
		skew, 100*relErr(skew, exact),
		uni, 100*relErr(uni, exact))
	fmt.Fprintln(w, "The skew-aware estimate tracks hubs that collapse into single records per stripe.")
	fmt.Fprintln(w, "NOTE: the power-law rows use the construction-Zipf histogram of our stand-ins, which is")
	fmt.Fprintln(w, "more concentrated than the real datasets; the headline figures keep the conservative")
	fmt.Fprintln(w, "uniform estimate, which is exact for the paper's own Erdős–Rényi Sy-* workloads.")
	return nil
}

func relErr(est, exact uint64) float64 {
	if exact == 0 {
		return 0
	}
	d := float64(est) - float64(exact)
	if d < 0 {
		d = -d
	}
	return d / float64(exact)
}
