package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/perfmodel"
)

// RunStackScaling sweeps the number of HBM stacks (the paper's §3: "this
// state of the art 3D stacked memories can provide extreme bandwidth (in
// the order of TB with multiple stacks)"): each stack adds 256 GB/s, the
// merge network scales its core count per the mc-scaling rule, and the
// modeled GTEPS on a billion-node graph follows the bandwidth almost
// linearly — the scalability headroom PRaP buys.
func RunStackScaling(w io.Writer, opt Options) error {
	g := perfmodel.GraphStats{Nodes: 1e9, Edges: 3e9}
	t := newTable("HBM stacks", "Stream BW (GB/s)", "Merge cores p", "Sustained (GB/s)", "GTEPS (TS)", "Prefetch (MiB)")
	base := perfmodel.ASICDesign(perfmodel.TS)
	single := base.SingleMCThroughput()
	for _, stacks := range []int{1, 2, 4, 8} {
		d := perfmodel.ASICDesign(perfmodel.TS)
		bw := 256e9 * float64(stacks)
		d.HBM.StreamBandwidth = bw
		d.HBM.Channels = 4 * stacks
		// Size the merge network to the sustained fraction.
		p := 1
		for float64(p)*single*d.MergeEff < bw*0.84 {
			p <<= 1
		}
		d.MergeCores = p
		r, err := d.Evaluate(g)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", stacks),
			fmt.Sprintf("%.0f", bw/1e9),
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.0f", d.SustainedThroughput()/1e9),
			fmt.Sprintf("%.1f", r.GTEPS),
			fmt.Sprintf("%.1f", float64(d.OnChip().PrefetchBytes)/float64(1<<20)))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGTEPS tracks bandwidth while the prefetch buffer stays flat: PRaP parallelism is")
	fmt.Fprintln(w, "free of on-chip memory cost, so multi-stack systems scale by adding merge cores only.")
	return nil
}
