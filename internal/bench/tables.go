package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/perfmodel"
	"mwmerge/internal/types"
)

// RunTable1 reproduces Table 1: fast on-chip memory size vs largest graph
// dimension, for the prior solutions (published values) and our modeled
// TS/ITS design points.
func RunTable1(w io.Writer, opt Options) error {
	t := newTable("Solution", "Fast on-chip memory (MB)", "Max vertices (M)")
	// Published rows, verbatim from the paper.
	t.add("FPGA [Zhou'15]", "8.4", "2.3")
	t.add("ASIC [Graphicionado]", "32.0", "8.0")
	t.add("CPU single socket", "20.0", "95.0")
	t.add("CPU dual socket", "50.0", "118.0")
	// Our modeled rows.
	for _, v := range []perfmodel.Variant{perfmodel.ITS, perfmodel.TS} {
		d := perfmodel.ASICDesign(v)
		oc := d.OnChip()
		t.add(fmt.Sprintf("%s (proposed ASIC)", v),
			fmt.Sprintf("%.1f", float64(oc.Total())/float64(types.MiB)),
			fmt.Sprintf("%.0f", float64(d.MaxNodes())/1e6))
	}
	return t.write(w)
}

// RunTable2 reproduces Table 2: the seven design points with their maximum
// graph dimension and sustained computation throughput, alongside the
// paper's published values.
func RunTable2(w io.Writer, opt Options) error {
	published := map[string][2]float64{ // ID -> {max nodes M, GB/s}
		"TS_ASIC":     {4000, 432},
		"ITS_ASIC":    {2000, 729},
		"ITS_VC_ASIC": {2000, 656},
		"TS_FPGA1":    {134.2, 96},
		"ITS_FPGA1":   {67.1, 178},
		"TS_FPGA2":    {67.1, 190},
		"ITS_FPGA2":   {33.6, 357},
	}
	t := newTable("Design point", "Max nodes (M)", "Paper", "Sustained (GB/s)", "Paper")
	for _, d := range perfmodel.Table2Points() {
		p := published[d.ID]
		t.add(d.ID,
			fmt.Sprintf("%.1f", float64(d.MaxNodes())/1e6),
			fmt.Sprintf("%.1f", p[0]),
			fmt.Sprintf("%.0f", d.SustainedThroughput()/1e9),
			fmt.Sprintf("%.0f", p[1]))
	}
	if err := t.write(w); err != nil {
		return err
	}
	d := perfmodel.ASICDesign(perfmodel.TS)
	fmt.Fprintf(w, "\nSingle %d-way MC at %.1f GHz: %.0f GB/s (paper: 28 GB/s)\n",
		d.Ways, d.FreqHz/1e9, d.SingleMCThroughput()/1e9)
	return nil
}

// RunTable3 reproduces Table 3: the custom hardware and GPU benchmark
// inventory.
func RunTable3(w io.Writer, opt Options) error {
	t := newTable("ID", "Architecture", "Description")
	t.add("BM1_ASIC", "Custom", "28-nm ASIC, 64 MB eDRAM scratchpad (Graphicionado)")
	t.add("BM1_FPGA", "Custom", "Virtex, 25 Mb BRAM + 90 Mb UltraRAM (edge-centric)")
	t.add("BM2_FPGA", "Custom", "Virtex-7, 67 Mb BRAM (PageRank-optimized)")
	t.add("BM1_GPU", "GPU", "8 nodes, Tesla M2050 (16 GB GDDR5)")
	return t.write(w)
}

func runDatasetTable(w io.Writer, sets []graph.Dataset) error {
	t := newTable("ID", "Description", "Nodes (M)", "Avg degree", "Edges (M)", "Generator")
	for _, d := range sets {
		t.add(d.ID, d.Desc,
			fmt.Sprintf("%.2f", d.NodesM),
			fmt.Sprintf("%.2f", d.AvgDegree),
			fmt.Sprintf("%.2f", d.EdgesM),
			d.Kind.String())
	}
	return t.write(w)
}

// RunTable4 lists the graphs compared against custom benchmarks.
func RunTable4(w io.Writer, opt Options) error { return runDatasetTable(w, graph.Table4) }

// RunTable5 lists the graphs compared against the GPU benchmark.
func RunTable5(w io.Writer, opt Options) error { return runDatasetTable(w, graph.Table5) }

// RunTable6 lists the graphs compared against CPU and co-processor.
func RunTable6(w io.Writer, opt Options) error { return runDatasetTable(w, graph.Table6) }
