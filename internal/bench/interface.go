package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/matrix"
	"mwmerge/internal/sim"
	"mwmerge/internal/types"
)

// RunInterfaceSweep runs the lock-step shared-DRAM-interface step-2
// simulation across interface widths: the merge network sustains p
// records/cycle only when the interface delivers at least that — the
// §2.2 requirement that the multi-way merge throughput match streaming
// bandwidth, observed from the starvation side.
func RunInterfaceSweep(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<15 {
		dim = 1 << 15
	}
	a, err := graph.ErdosRenyi(dim, 6, opt.Seed)
	if err != nil {
		return err
	}
	machine, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}
	stripes, err := matrix.Partition1D(a, dim/8+1)
	if err != nil {
		return err
	}
	lists := make([][]types.Record, len(stripes))
	for k, s := range stripes {
		var recs []types.Record
		for _, e := range s.Entries {
			if n := len(recs); n > 0 && recs[n-1].Key == e.Row {
				recs[n-1].Val += e.Val
				continue
			}
			recs = append(recs, types.Record{Key: e.Row, Val: e.Val})
		}
		lists[k] = recs
	}

	p := machine.Config().Merge.Cores()
	t := newTable("Interface (rec/cycle)", "Cycles", "Aggregate rec/cycle", "Refills denied")
	for _, width := range []int{1, 2, 4, 8, 16, 64} {
		rep, err := machine.RunStep2Shared(lists, dim, width)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%.2f", rep.AggregateRecordsPerCycle()),
			fmt.Sprintf("%d", rep.RefillDenied))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nWith %d merge cores, throughput saturates once the interface reaches ~%d records/cycle;\n", p, p)
	fmt.Fprintln(w, "below that the cores starve — why PRaP sizes the DRAM interface at p records/cycle (§4.2.1).")
	return nil
}
