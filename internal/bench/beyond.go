package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/perfmodel"
)

// RunCapacityBeyond sweeps the problem dimension past the single-pass
// capacity bound, showing the multi-pass merge degradation curve — what
// "slicing and partitioning larger graphs" costs, quantified for our own
// design instead of handwaved for prior work.
func RunCapacityBeyond(w io.Writer, opt Options) error {
	d := perfmodel.ASICDesign(perfmodel.TS)
	fmt.Fprintf(w, "TS_ASIC single-pass capacity: %.1fB nodes (K=%d x %.1fM segment)\n\n",
		float64(d.MaxNodes())/1e9, d.Ways, float64(d.SegmentWidth())/1e6)
	t := newTable("Nodes (B)", "Avg degree", "Extra passes", "GTEPS", "Intermediate traffic (GB)")
	for _, nodesB := range []float64{1, 4, 8, 16, 32, 64} {
		g := perfmodel.GraphStats{Nodes: uint64(nodesB * 1e9), Edges: uint64(nodesB * 3e9)}
		r, err := d.EvaluateSliced(g)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%.0f", nodesB),
			"3.0",
			fmt.Sprintf("%d", r.Passes),
			fmt.Sprintf("%.1f", r.GTEPS),
			fmt.Sprintf("%.0f", float64(r.Traffic.IntermediateWrite+r.Traffic.IntermediateRead)/1e9))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nBeyond 4.3B nodes each extra merge pass adds an intermediate round trip; performance")
	fmt.Fprintln(w, "degrades gradually instead of hitting a wall — or double the vector buffer (§6) and")
	fmt.Fprintln(w, "push the single-pass bound out instead.")
	return nil
}
