package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/mem"
	"mwmerge/internal/sim"
)

// RunRowBuffer replays every DRAM stream of one Two-Step SpMV through the
// open-page row-buffer simulator and contrasts it with the latency-bound
// algorithm's x gathers — the §2.1 argument ("completely amortize DRAM
// row buffer opening cost") measured rather than asserted.
func RunRowBuffer(w io.Writer, opt Options) error {
	dim := opt.Scale
	if dim > 1<<16 {
		dim = 1 << 16
	}
	a, err := graph.ErdosRenyi(dim, 3, opt.Seed)
	if err != nil {
		return err
	}
	machine, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}
	rep, err := machine.ReplayDRAM(a, mem.DefaultRowBufferConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Graph: %d nodes, %d edges; DRAM: %d banks x %s rows\n\n",
		a.Rows, a.NNZ(), mem.DefaultRowBufferConfig().Banks,
		mem.FormatBytes(mem.DefaultRowBufferConfig().RowBytes))
	fmt.Fprint(w, sim.FormatDRAMReport(rep))
	fmt.Fprintf(w, "\nTwo-Step overall row-buffer hit rate: %.1f%% — activation cost amortized to noise.\n",
		100*rep.OverallHitRate())
	return nil
}
