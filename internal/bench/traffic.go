package bench

import (
	"fmt"
	"io"

	"mwmerge/internal/graph"
	"mwmerge/internal/perfmodel"
	"mwmerge/internal/stats"
	"mwmerge/internal/types"
	"mwmerge/internal/vldi"
)

// RunFig4 reproduces Figure 4: total off-chip traffic of the latency-bound
// algorithm vs Two-Step on a 1-billion-node, average-degree-3 graph,
// decomposed into the same categories (matrix, source vector, result and
// intermediate, cache-line wastage).
func RunFig4(w io.Writer, opt Options) error {
	g := perfmodel.GraphStats{Nodes: 1e9, Edges: 3e9}
	d := perfmodel.ASICDesign(perfmodel.TS)
	lb := perfmodel.LatencyBoundTraffic(g, 30<<20, d.ValueBytes, d.MetaBytes)
	ts := d.TwoStepTraffic(g)

	fmt.Fprintf(w, "Graph: N=%.0fM nodes, nnz=%.0fM, avg degree %.1f\n\n",
		float64(g.Nodes)/1e6, float64(g.Edges)/1e6, g.AvgDegree())
	t := newTable("Component (GB)", "Latency-bound", "Two-Step")
	t.add("Matrix", fmtGB(lb.MatrixBytes), fmtGB(ts.MatrixBytes))
	t.add("Source vector", fmtGB(lb.SourceVectorBytes), fmtGB(ts.SourceVectorBytes))
	t.add("Result+intermediate", fmtGB(lb.ResultBytes), fmtGB(ts.ResultBytes+ts.IntermediateWrite+ts.IntermediateRead))
	t.add("Cache line wastage", fmtGB(lb.WastageBytes), fmtGB(ts.WastageBytes))
	t.add("Payload", fmtGB(lb.Payload()), fmtGB(ts.Payload()))
	t.add("TOTAL", fmtGB(lb.Total()), fmtGB(ts.Total()))
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nTwo-Step moves %.0f%% of the latency-bound traffic despite %.1fx the payload.\n",
		100*float64(ts.Total())/float64(lb.Total()),
		float64(ts.Payload())/float64(lb.Payload()))
	return nil
}

// RunFig13 reproduces Figure 13: the probability distribution of
// delta-index bit widths for an 80M x 80M Erdős–Rényi degree-3 graph under
// two on-chip memory sizes (5 MB and 35 MB), and the resulting optimal
// VLDI block/string lengths. The distribution is computed in closed form
// from the stripe nonzero density (gaps are geometric) and cross-checked
// by sampling a scaled-down instance.
func RunFig13(w io.Writer, opt Options) error {
	const (
		n   = 80e6
		deg = 3.0
	)
	for _, memBytes := range []uint64{5e6, 35e6} {
		segWidth := memBytes / 4 // single-precision vector elements
		nStripes := uint64(n)/segWidth + 1
		// Density of nonzeros along one intermediate vector: a stripe
		// holds nnz/nStripes of the edges spread over N rows.
		density := deg / float64(nStripes)
		dist := stats.GeometricGapWidthDist(density, 32)
		block, bits := vldi.OptimalBlockBits(dist, 16)

		fmt.Fprintf(w, "On-chip memory %d MB -> stripe width %.2fM, %d stripes, nonzero density %.4g\n",
			memBytes/1e6, float64(segWidth)/1e6, nStripes, density)
		t := newTable("Delta width (bits)", "Probability")
		for width := 1; width <= 16; width++ {
			t.add(fmt.Sprintf("%d", width), fmt.Sprintf("%.4f", dist[width]))
		}
		if err := t.write(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "Optimal VLDI block = %d bits, string = %d bits (expected %.2f bits/delta)\n\n",
			block, block+1, bits)
	}

	// Functional cross-check on a scaled instance.
	scale := opt.Scale
	if scale > 200000 {
		scale = 200000
	}
	m, err := graph.ErdosRenyi(scale, deg, opt.Seed)
	if err != nil {
		return err
	}
	// Match the 5MB case's stripe count on the scaled graph.
	nStripes := uint64(64)
	segWidth := m.Cols / nStripes
	h := stats.NewHistogram(33)
	deltas, err := collectStripeDeltas(m, segWidth)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		h.Add(stats.BitWidth(d))
	}
	fmt.Fprintf(w, "Sampled cross-check (N=%d, %d stripes): mode width %d bits, mean %.2f bits\n",
		scale, nStripes, h.Mode(), h.Mean())
	return nil
}

// RunFig14 reproduces Figure 14: total off-chip traffic for the 80M x 80M
// random graph with 20 MB on-chip memory, across value precisions, for no
// compression / vector-only VLDI / matrix+vector VLDI, with the paper's
// savings percentages.
func RunFig14(w io.Writer, opt Options) error {
	g := perfmodel.GraphStats{Nodes: 80e6, Edges: 240e6}
	segWidth := uint64(20e6) / 4
	recs := g.IntermediateRecords(segWidth)

	// VLDI meta width from the closed-form gap distribution.
	nStripes := (g.Nodes + segWidth - 1) / segWidth
	density := g.AvgDegree() / float64(nStripes)
	dist := stats.GeometricGapWidthDist(density, 32)
	_, bitsPerDelta := vldi.OptimalBlockBits(dist, 16)
	vldiMeta := bitsPerDelta / 8

	precisions := []struct {
		name string
		bits int
	}{
		{"Quadruple(128)", 128}, {"Double(64)", 64}, {"Single(32)", 32},
		{"Half(16)", 16}, {"Quarter(8)", 8}, {"Bit(1)", 1},
	}
	// Raw (uncompressed) index width: 80M rows fit in 32 bits, so the
	// no-compression baseline stores 4-byte indices.
	meta := float64(types.ValBytes32)
	t := newTable("Precision", "None (GB)", "VLDI vector (GB)", "VLDI mat+vec (GB)", "Savings")
	for _, p := range precisions {
		val := float64(p.bits) / 8
		total := func(matMeta, vecMeta float64) float64 {
			matrixB := float64(g.Edges) * (matMeta + val)
			xB := float64(g.Nodes) * val
			interB := 2 * float64(recs) * (vecMeta + val)
			yB := float64(g.Nodes) * val
			return (matrixB + xB + interB + yB) / 1e9
		}
		none := total(meta, meta)
		vecOnly := total(meta, vldiMeta)
		both := total(vldiMeta, vldiMeta)
		t.add(p.name,
			fmt.Sprintf("%.2f", none),
			fmt.Sprintf("%.2f", vecOnly),
			fmt.Sprintf("%.2f", both),
			fmt.Sprintf("%.1f%%", 100*(1-both/none)))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSavings grow as precision shrinks (paper: 13.4%% at 128-bit to 66.4%% at 1-bit).\n")
	return nil
}
