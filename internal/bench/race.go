//go:build race

package bench

// raceEnabled reports whether the binary was built with the race
// detector, whose allocation instrumentation invalidates the
// alloc-steady budget check.
const raceEnabled = true
