// Package bench regenerates every table and figure of the paper's
// evaluation. Each experiment is a named runner that prints the same rows
// or series the paper reports; cmd/spmvbench dispatches to them and
// bench_test.go wraps each in a testing.B benchmark. Full-scale series use
// the analytic models; *-functional experiments run the real datapath on
// scaled-down instances.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mwmerge/internal/report"
)

// Options tunes experiment execution.
type Options struct {
	// Scale caps the node count of functional (materialized) runs.
	Scale uint64
	// Seed drives all synthetic generation.
	Seed int64
	// MergeWorkers bounds the goroutines of the step-2 PRaP merge in
	// functional runs (0 = GOMAXPROCS, 1 = sequential). Results are
	// bit-identical at any setting; only wall-clock time changes.
	MergeWorkers int
	// MergeKernel selects the intra-core merge kernel for functional
	// runs ("" or "losertree" = loser tree, "mergepath" = Merge Path).
	// Like MergeWorkers, the choice is bit-identical by construction.
	MergeKernel string
	// Drain selects the step-2 store-queue drain for functional runs
	// ("" or "auto", "dense", "sparse"); bit-identical in every mode.
	Drain string
	// Recorder, when non-nil, is attached to every functional engine the
	// experiment builds, collecting the observability run report
	// (DESIGN.md §8). Analytic-model experiments build no engines and
	// record nothing.
	Recorder *report.Recorder
}

// DefaultOptions returns sizes suitable for a laptop-scale run.
func DefaultOptions() Options { return Options{Scale: 1 << 17, Seed: 1} }

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig2", Title: "Fig 2: fabricated ASIC specifications from the calibrated models", Run: RunFig2},
		{ID: "fig4", Title: "Fig 4: off-chip traffic, latency-bound vs Two-Step (1B nodes, deg 3)", Run: RunFig4},
		{ID: "fig13", Title: "Fig 13: delta-index width distribution and optimal VLDI block", Run: RunFig13},
		{ID: "fig14", Title: "Fig 14: off-chip traffic reduction using VLDI vs precision", Run: RunFig14},
		{ID: "tab1", Title: "Table 1: on-chip memory vs max graph dimension", Run: RunTable1},
		{ID: "tab2", Title: "Table 2: design points, max nodes and sustained throughput", Run: RunTable2},
		{ID: "tab3", Title: "Table 3: custom hardware and GPU benchmarks", Run: RunTable3},
		{ID: "tab4", Title: "Table 4: graphs vs custom benchmarks", Run: RunTable4},
		{ID: "tab5", Title: "Table 5: graphs vs GPU benchmark", Run: RunTable5},
		{ID: "tab6", Title: "Table 6: graphs vs CPU and co-processor", Run: RunTable6},
		{ID: "fig17", Title: "Fig 17: GTEPS, proposed ASIC vs custom hardware", Run: RunFig17},
		{ID: "fig18", Title: "Fig 18: GTEPS, proposed FPGA vs custom hardware", Run: RunFig18},
		{ID: "fig19", Title: "Fig 19: GTEPS and nJ/edge, ASIC vs GPU", Run: RunFig19},
		{ID: "fig20", Title: "Fig 20: GTEPS and nJ/edge, FPGA vs GPU", Run: RunFig20},
		{ID: "fig21", Title: "Fig 21: GTEPS and nJ/edge, ASIC vs CPU/Xeon Phi", Run: RunFig21},
		{ID: "fig22", Title: "Fig 22: GTEPS and nJ/edge, FPGA vs CPU/Xeon Phi", Run: RunFig22},
		{ID: "ablation-prefetch", Title: "Ablation §4.1: prefetch buffer, partitioning vs PRaP", Run: RunAblationPrefetch},
		{ID: "ablation-mergeways", Title: "Ablation §3.2: single MC cycle behaviour vs ways", Run: RunAblationMergeWays},
		{ID: "ablation-prap", Title: "Ablation §4.2: PRaP scaling vs radix width", Run: RunAblationPRaP},
		{ID: "ablation-hdn", Title: "Ablation §5.3: Bloom HDN detection on power-law graphs", Run: RunAblationHDN},
		{ID: "ablation-its", Title: "Ablation §5.2: cycle-simulated ITS overlap vs sequential schedule", Run: RunAblationITS},
		{ID: "its-pipeline", Title: "Fig 15: measured ITS pipelining, sequential vs overlapped wall-clock", Run: RunITSPipeline},
		{ID: "ablation-vldi", Title: "Ablation §5.1: measured VLDI block-width sweep on a real graph", Run: RunAblationVLDIMeasured},
		{ID: "mc-scaling", Title: "§2.2/§4.2: merge cores needed to saturate HBM generations", Run: RunMCScaling},
		{ID: "onchip-sweep", Title: "§6 scaling: vector buffer vs max dimension; FIFO SRAM packing", Run: RunOnChipSweep},
		{ID: "rowbuffer", Title: "§2.1: row-buffer hit rates, Two-Step streams vs latency-bound gathers", Run: RunRowBuffer},
		{ID: "beyond-spmv", Title: "Conclusion: SpGEMM on the merge network (beyond SpMV)", Run: RunBeyondSpMV},
		{ID: "interface-sweep", Title: "§4.2.1: shared DRAM interface width vs merge-network throughput", Run: RunInterfaceSweep},
		{ID: "capacity-beyond", Title: "Beyond capacity: multi-pass merge degradation past 4.3B nodes", Run: RunCapacityBeyond},
		{ID: "stack-scaling", Title: "§3: GTEPS vs HBM stack count (multi-stack scalability)", Run: RunStackScaling},
		{ID: "skew-model", Title: "Model refinement: degree-aware intermediate-record estimate vs uniform", Run: RunSkewModel},
		{ID: "designspace", Title: "Co-design: (p, K, lanes) sweep under the 7.5 mm2 / 11 MiB budget", Run: RunDesignSpace},
		{ID: "alloc-steady", Title: "Steady state: iterative-SpMV allocations per iteration vs budget", Run: RunAllocSteady},
		{ID: "host-baseline", Title: "Grounding: measured host-CPU SpMV vs modeled COTS and accelerator", Run: RunHostBaseline},
		{ID: "block-spmv", Title: "Block SpMV: multi-RHS matrix-stream amortization vs k sequential runs", Run: RunBlockSpMV},
		{ID: "merge-kernels", Title: "Merge kernels: loser tree vs Merge Path, uniform and skewed, bit-identity enforced", Run: RunMergeKernels},
		{ID: "drain", Title: "Store-queue drain: dense walk vs sparse fast path across fill ratios, bit-identity enforced", Run: RunDrain},
		{ID: "functional", Title: "Functional cross-check: Two-Step vs reference on scaled datasets", Run: RunFunctional},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
}

// table is a minimal fixed-width text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

func fmtGB(bytes uint64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/1e9)
}
