package bench

import (
	"fmt"
	"io"
	"time"

	"mwmerge/internal/core"
	"mwmerge/internal/graph"
	"mwmerge/internal/prap"
)

// RunITSPipeline measures the software realization of the paper's ITS
// overlap (Fig. 15) as wall-clock, not cycle counts: the same
// multi-iteration damped SpMV runs once on the sequential Two-Step
// schedule and once with the segment-handoff pipeline, on a power-law
// graph with real step-1 and merge parallelism. The two schedules must
// produce bit-identical vectors — the run aborts otherwise — so the
// table is purely a throughput comparison, plus the transition traffic
// the pipeline kept on chip.
func RunITSPipeline(w io.Writer, opt Options) error {
	scale := opt.Scale
	if scale > 1<<15 {
		// Pipelined capacity: 256 ways of 2 Ki-element segments, halved.
		scale = 1 << 15
	}
	const iters = 6
	newEngine := func() (*core.Engine, error) {
		return core.New(core.Config{
			ScratchpadBytes: 16 << 10,
			ValueBytes:      8,
			MetaBytes:       8,
			Lanes:           8,
			Workers:         4,
			Merge:           prap.Config{Q: 3, Ways: 256, FIFODepth: 4, DPage: 1 << 10, RecordBytes: 16, MergeWorkers: opt.MergeWorkers},
			HBM:             defaultHBM(),
			Recorder:        opt.Recorder,
		})
	}
	a, err := graph.Zipf(scale, 8, 1.9, opt.Seed)
	if err != nil {
		return err
	}
	x0 := randomDense(a.Cols, opt.Seed+1)

	run := func(overlap bool) (core.IterateResult, time.Duration, error) {
		eng, err := newEngine()
		if err != nil {
			return core.IterateResult{}, 0, err
		}
		start := time.Now()
		res, err := eng.Iterate(a, x0, core.IterateOptions{Iterations: iters, Overlap: overlap, Damping: 0.85})
		return res, time.Since(start), err
	}
	seqRes, seqT, err := run(false)
	if err != nil {
		return err
	}
	ovlRes, ovlT, err := run(true)
	if err != nil {
		return err
	}
	if d := seqRes.X.MaxAbsDiff(ovlRes.X); d != 0 {
		return fmt.Errorf("bench: pipelined schedule diverged from sequential by %g", d)
	}

	fmt.Fprintf(w, "ITS pipelining: %d nodes, %d edges, %d damped iterations, bit-identical results\n\n",
		a.Rows, a.NNZ(), iters)
	t := newTable("Schedule", "Wall-clock", "Speedup", "Transition bytes saved")
	t.add("sequential Two-Step", seqT.String(), "1.00x", "0")
	t.add("ITS pipelined", ovlT.String(),
		fmt.Sprintf("%.2fx", float64(seqT)/float64(ovlT)),
		fmt.Sprintf("%d", ovlRes.TransitionBytesSaved))
	return t.write(w)
}
